//! Bit-exact encodings of leaf rules and internal nodes inside 4800-bit
//! memory words.
//!
//! ## Leaf rule format (160 bits, Section 3 of the paper)
//!
//! | bits      | field                                            |
//! |-----------|--------------------------------------------------|
//! | 0–15      | source port minimum                              |
//! | 16–31     | source port maximum                              |
//! | 32–47     | destination port minimum                         |
//! | 48–63     | destination port maximum                         |
//! | 64–95     | source IP address (32 bits)                      |
//! | 96–98     | source IP mask code (3 bits, see below)          |
//! | 99–130    | destination IP address (32 bits)                 |
//! | 131–133   | destination IP mask code (3 bits)                |
//! | 134–141   | protocol number                                  |
//! | 142       | protocol wildcard flag (1 = match any protocol)  |
//! | 143–158   | rule number (16 bits)                            |
//! | 159       | end-of-leaf marker                               |
//!
//! The paper compresses the 6-bit prefix length to 3 bits by reusing the low
//! bits of the address when the prefix is short ("storing 3 bits of the
//! encoded mask value in the 3 least significant bits of the IP address when
//! the mask is 0-27").  The concrete scheme used here, which round-trips all
//! 33 prefix lengths, is:
//!
//! * mask code `1..=5` ⇒ prefix length `27 + code` (28–32); the address field
//!   holds the full address.
//! * mask code `0` ⇒ prefix length 0–27; the length is stored in the five
//!   least-significant bits of the address field (those bits are below the
//!   prefix and therefore don't-care), and the decoder masks them off.
//!
//! Bit 159 is unused by the paper's field inventory (its fields add up to
//! 159 bits); this implementation uses it as an end-of-leaf marker so the
//! comparator array knows where a leaf stops when several leaves share one
//! memory word.
//!
//! ## Internal node format
//!
//! | bits        | field                                               |
//! |-------------|-----------------------------------------------------|
//! | 0–79        | five (mask, shift) pairs, 8 bits each, in field order |
//! | 80–4687     | 256 child entries x 18 bits                          |
//!
//! Each child entry holds 1 bit node type (1 = leaf), 12 bits memory word
//! address and 5 bits starting position, exactly the budget quoted in
//! Section 3.  The shift field is a signed two's-complement byte: positive
//! values shift right, negative values shift left (the paper only says the
//! masked value is "shifted by the shift values"; a signed shift lets the
//! mixed-radix index of multi-dimensional cuts be formed by pure
//! mask-shift-add hardware).
//!
//! An all-ones child entry (type = leaf, address = 0xFFF, position = 31) is
//! reserved as the *null child*: the region holds no rules and the packet is
//! reported as unmatched without a further memory access.

use crate::bits::{get_bits, set_bits, Word};
use crate::{MAX_CUTS, RULES_PER_WORD, RULE_BITS};
use pclass_types::{Dimension, FieldRange, Prefix, Rule, RuleId, FIELD_COUNT};

/// Errors raised while encoding rules or nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An IP field of the rule is not expressible as a prefix.
    NotAPrefix {
        /// The rule that could not be encoded.
        rule: RuleId,
        /// The offending dimension.
        dimension: Dimension,
    },
    /// The protocol field is neither exact nor a full wildcard.
    UnsupportedProtocol {
        /// The rule that could not be encoded.
        rule: RuleId,
    },
    /// The rule id does not fit the 16-bit rule-number field.
    RuleIdTooLarge {
        /// The rule that could not be encoded.
        rule: RuleId,
    },
    /// A child entry's word address exceeds the 12-bit address field.
    AddressTooLarge {
        /// The offending word address.
        address: usize,
    },
    /// More than [`MAX_CUTS`] child entries were supplied for one node.
    TooManyChildren {
        /// Number of children supplied.
        children: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::NotAPrefix { rule, dimension } => {
                write!(f, "rule {rule}: {dimension} range is not a prefix")
            }
            EncodeError::UnsupportedProtocol { rule } => {
                write!(
                    f,
                    "rule {rule}: protocol range is neither exact nor wildcard"
                )
            }
            EncodeError::RuleIdTooLarge { rule } => write!(f, "rule id {rule} exceeds 16 bits"),
            EncodeError::AddressTooLarge { address } => {
                write!(f, "word address {address} exceeds 12 bits")
            }
            EncodeError::TooManyChildren { children } => {
                write!(f, "{children} children exceed the {MAX_CUTS}-cut limit")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

// ---------------------------------------------------------------------------
// Leaf rules
// ---------------------------------------------------------------------------

/// A rule decoded back out of its 160-bit representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedRule {
    /// The matching ranges the comparator block evaluates.
    pub ranges: [FieldRange; FIELD_COUNT],
    /// The 16-bit rule number.
    pub id: RuleId,
    /// `true` if this is the last rule of its leaf.
    pub end_of_leaf: bool,
}

impl DecodedRule {
    /// `true` if the packet lies inside every range — the job of one of the
    /// 30 parallel comparator blocks.
    pub fn matches(&self, pkt: &pclass_types::PacketHeader) -> bool {
        self.ranges
            .iter()
            .zip(pkt.fields.iter())
            .all(|(r, &v)| r.contains(v))
    }
}

/// Encodes the prefix length of an IP range into the (mask code, stored
/// address) pair described in the module docs.
fn encode_ip(
    range: FieldRange,
    rule: RuleId,
    dimension: Dimension,
) -> Result<(u32, u8), EncodeError> {
    let prefix =
        Prefix::from_range(range, 32).ok_or(EncodeError::NotAPrefix { rule, dimension })?;
    if prefix.length >= 28 {
        Ok((prefix.value, prefix.length - 27))
    } else {
        Ok((prefix.value | u32::from(prefix.length), 0))
    }
}

/// Decodes an (address, mask code) pair back into the covered range.
fn decode_ip(stored: u32, code: u8) -> FieldRange {
    let length = if code == 0 {
        (stored & 0x1F) as u8
    } else {
        27 + code
    };
    Prefix::ipv4(stored, length).to_range()
}

/// Writes one rule at rule slot `pos` (0..30) of a word.
pub fn write_rule(
    word: &mut Word,
    pos: usize,
    rule: &Rule,
    end_of_leaf: bool,
) -> Result<(), EncodeError> {
    assert!(pos < RULES_PER_WORD, "rule position {pos} out of range");
    if rule.id > 0xFFFF {
        return Err(EncodeError::RuleIdTooLarge { rule: rule.id });
    }
    let sp = rule.range(Dimension::SrcPort);
    let dp = rule.range(Dimension::DstPort);
    let proto = rule.range(Dimension::Protocol);
    let (proto_value, proto_any) = if proto == FieldRange::full(8) {
        (0u64, 1u64)
    } else if proto.is_exact() {
        (u64::from(proto.lo), 0u64)
    } else {
        return Err(EncodeError::UnsupportedProtocol { rule: rule.id });
    };
    let (src_addr, src_code) = encode_ip(rule.range(Dimension::SrcIp), rule.id, Dimension::SrcIp)?;
    let (dst_addr, dst_code) = encode_ip(rule.range(Dimension::DstIp), rule.id, Dimension::DstIp)?;

    let base = pos * RULE_BITS;
    set_bits(word, base, 16, u64::from(sp.lo));
    set_bits(word, base + 16, 16, u64::from(sp.hi));
    set_bits(word, base + 32, 16, u64::from(dp.lo));
    set_bits(word, base + 48, 16, u64::from(dp.hi));
    set_bits(word, base + 64, 32, u64::from(src_addr));
    set_bits(word, base + 96, 3, u64::from(src_code));
    set_bits(word, base + 99, 32, u64::from(dst_addr));
    set_bits(word, base + 131, 3, u64::from(dst_code));
    set_bits(word, base + 134, 8, proto_value);
    set_bits(word, base + 142, 1, proto_any);
    set_bits(word, base + 143, 16, u64::from(rule.id));
    set_bits(word, base + 159, 1, u64::from(end_of_leaf));
    Ok(())
}

/// Reads the rule at rule slot `pos` (0..30) of a word.
pub fn read_rule(word: &Word, pos: usize) -> DecodedRule {
    assert!(pos < RULES_PER_WORD, "rule position {pos} out of range");
    let base = pos * RULE_BITS;
    let sp_lo = get_bits(word, base, 16) as u32;
    let sp_hi = get_bits(word, base + 16, 16) as u32;
    let dp_lo = get_bits(word, base + 32, 16) as u32;
    let dp_hi = get_bits(word, base + 48, 16) as u32;
    let src_addr = get_bits(word, base + 64, 32) as u32;
    let src_code = get_bits(word, base + 96, 3) as u8;
    let dst_addr = get_bits(word, base + 99, 32) as u32;
    let dst_code = get_bits(word, base + 131, 3) as u8;
    let proto_value = get_bits(word, base + 134, 8) as u32;
    let proto_any = get_bits(word, base + 142, 1) == 1;
    let id = get_bits(word, base + 143, 16) as RuleId;
    let end_of_leaf = get_bits(word, base + 159, 1) == 1;
    DecodedRule {
        ranges: [
            decode_ip(src_addr, src_code),
            decode_ip(dst_addr, dst_code),
            FieldRange::new(sp_lo, sp_hi),
            FieldRange::new(dp_lo, dp_hi),
            if proto_any {
                FieldRange::full(8)
            } else {
                FieldRange::exact(proto_value)
            },
        ],
        id,
        end_of_leaf,
    }
}

// ---------------------------------------------------------------------------
// Internal nodes
// ---------------------------------------------------------------------------

/// Offset of the child-entry array inside an internal-node word.
const CHILD_ARRAY_OFFSET: usize = 80;
/// Bits per child entry (1 type + 12 address + 5 position).
const CHILD_ENTRY_BITS: usize = 18;

/// One child entry of an internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildEntry {
    /// The child region holds no rules: classification stops with no match.
    Null,
    /// The child is another internal node stored in word `word`.
    Internal {
        /// Memory word holding the child node.
        word: usize,
    },
    /// The child is a leaf starting at rule slot `pos` of word `word`.
    Leaf {
        /// Memory word holding the first rules of the leaf.
        word: usize,
        /// Rule slot (0..30) at which the leaf starts.
        pos: usize,
    },
}

/// The decoded header of an internal node: per-dimension masks and shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHeader {
    /// 8-bit mask applied to the 8 MSBs of each dimension.
    pub masks: [u8; FIELD_COUNT],
    /// Signed shift applied after masking (positive = right shift).
    pub shifts: [i8; FIELD_COUNT],
}

impl NodeHeader {
    /// A header that selects child 0 for every packet (no cuts).
    pub fn identity() -> NodeHeader {
        NodeHeader {
            masks: [0; FIELD_COUNT],
            shifts: [0; FIELD_COUNT],
        }
    }

    /// Computes the child index for a packet: the mask–shift–add datapath of
    /// the accelerator (Section 4 of the paper).
    pub fn child_index(&self, msb8: &[u8; FIELD_COUNT]) -> u32 {
        let mut index: u32 = 0;
        for ((&byte, &mask), &shift) in msb8.iter().zip(&self.masks).zip(&self.shifts) {
            let masked = u32::from(byte & mask);
            let shifted = if shift >= 0 {
                masked >> shift
            } else {
                masked << -shift
            };
            index = index.wrapping_add(shifted);
        }
        index
    }
}

/// Writes an internal node (header + child entries) into a word.
pub fn write_internal(
    word: &mut Word,
    header: &NodeHeader,
    children: &[ChildEntry],
) -> Result<(), EncodeError> {
    if children.len() > MAX_CUTS as usize {
        return Err(EncodeError::TooManyChildren {
            children: children.len(),
        });
    }
    for d in 0..FIELD_COUNT {
        set_bits(word, d * 16, 8, u64::from(header.masks[d]));
        set_bits(word, d * 16 + 8, 8, u64::from(header.shifts[d] as u8));
    }
    for (i, entry) in children.iter().enumerate() {
        let (is_leaf, addr, pos) = match *entry {
            ChildEntry::Null => (1u64, 0xFFFusize, 31usize),
            ChildEntry::Internal { word } => (0u64, word, 0usize),
            ChildEntry::Leaf { word, pos } => (1u64, word, pos),
        };
        if addr > 0xFFF {
            return Err(EncodeError::AddressTooLarge { address: addr });
        }
        debug_assert!(pos < 32);
        let base = CHILD_ARRAY_OFFSET + i * CHILD_ENTRY_BITS;
        set_bits(word, base, 1, is_leaf);
        set_bits(word, base + 1, 12, addr as u64);
        set_bits(word, base + 13, 5, pos as u64);
    }
    Ok(())
}

/// Reads the header of an internal node.
pub fn read_header(word: &Word) -> NodeHeader {
    let mut masks = [0u8; FIELD_COUNT];
    let mut shifts = [0i8; FIELD_COUNT];
    for d in 0..FIELD_COUNT {
        masks[d] = get_bits(word, d * 16, 8) as u8;
        shifts[d] = get_bits(word, d * 16 + 8, 8) as u8 as i8;
    }
    NodeHeader { masks, shifts }
}

/// Reads child entry `i` of an internal node.
pub fn read_child(word: &Word, i: usize) -> ChildEntry {
    assert!(i < MAX_CUTS as usize, "child index {i} out of range");
    let base = CHILD_ARRAY_OFFSET + i * CHILD_ENTRY_BITS;
    let is_leaf = get_bits(word, base, 1) == 1;
    let addr = get_bits(word, base + 1, 12) as usize;
    let pos = get_bits(word, base + 13, 5) as usize;
    if is_leaf && addr == 0xFFF && pos == 31 {
        ChildEntry::Null
    } else if is_leaf {
        ChildEntry::Leaf { word: addr, pos }
    } else {
        ChildEntry::Internal { word: addr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::zero_word;
    use pclass_types::{PacketHeader, RuleBuilder};
    use proptest::prelude::*;

    fn sample_rule(id: RuleId) -> Rule {
        RuleBuilder::new(id)
            .src_prefix(0x0A00_0000, 8)
            .dst_prefix(0xC0A8_0180, 25)
            .src_port_range(1024, 65535)
            .dst_port(443)
            .protocol(6)
            .build()
    }

    #[test]
    fn rule_roundtrip_all_slots() {
        let rule = sample_rule(77);
        let mut word = zero_word();
        for pos in 0..RULES_PER_WORD {
            write_rule(&mut word, pos, &rule, pos % 2 == 0).unwrap();
        }
        for pos in 0..RULES_PER_WORD {
            let decoded = read_rule(&word, pos);
            assert_eq!(decoded.ranges, rule.ranges);
            assert_eq!(decoded.id, 77);
            assert_eq!(decoded.end_of_leaf, pos % 2 == 0);
        }
    }

    #[test]
    fn wildcard_rule_roundtrip() {
        let rule = RuleBuilder::new(0xFFFF).build();
        let mut word = zero_word();
        write_rule(&mut word, 0, &rule, true).unwrap();
        let decoded = read_rule(&word, 0);
        assert_eq!(decoded.ranges, rule.ranges);
        assert_eq!(decoded.id, 0xFFFF);
        assert!(decoded.end_of_leaf);
    }

    #[test]
    fn short_and_long_prefixes_roundtrip() {
        for len in [0u8, 1, 7, 8, 15, 16, 23, 24, 27, 28, 29, 30, 31, 32] {
            let rule = RuleBuilder::new(1)
                .src_prefix(0xDEAD_BEEF, len)
                .dst_prefix(0x0102_0304, 32 - len.min(32))
                .build();
            let mut word = zero_word();
            write_rule(&mut word, 3, &rule, false).unwrap();
            let decoded = read_rule(&word, 3);
            assert_eq!(decoded.ranges, rule.ranges, "prefix length {len}");
        }
    }

    #[test]
    fn decoded_rule_matches_like_original() {
        let rule = sample_rule(5);
        let mut word = zero_word();
        write_rule(&mut word, 10, &rule, true).unwrap();
        let decoded = read_rule(&word, 10);
        let hit = PacketHeader::five_tuple(0x0A01_0203, 0xC0A8_01FE, 4000, 443, 6);
        let miss = PacketHeader::five_tuple(0x0B01_0203, 0xC0A8_01FE, 4000, 443, 6);
        assert!(decoded.matches(&hit));
        assert!(rule.matches(&hit));
        assert!(!decoded.matches(&miss));
        assert!(!rule.matches(&miss));
    }

    #[test]
    fn non_prefix_ip_is_rejected() {
        let rule = RuleBuilder::new(2).src_ip_range(5, 9).build();
        let mut word = zero_word();
        let err = write_rule(&mut word, 0, &rule, false).unwrap_err();
        assert!(matches!(
            err,
            EncodeError::NotAPrefix {
                rule: 2,
                dimension: Dimension::SrcIp
            }
        ));
    }

    #[test]
    fn odd_protocol_range_is_rejected() {
        let mut rule = RuleBuilder::new(3).build();
        rule.ranges[4] = FieldRange::new(0, 100);
        let mut word = zero_word();
        let err = write_rule(&mut word, 0, &rule, false).unwrap_err();
        assert_eq!(err, EncodeError::UnsupportedProtocol { rule: 3 });
    }

    #[test]
    fn oversized_rule_id_is_rejected() {
        let rule = RuleBuilder::new(0x1_0000).build();
        let mut word = zero_word();
        let err = write_rule(&mut word, 0, &rule, false).unwrap_err();
        assert_eq!(err, EncodeError::RuleIdTooLarge { rule: 0x1_0000 });
    }

    #[test]
    fn internal_node_roundtrip() {
        let mut word = zero_word();
        let header = NodeHeader {
            masks: [0xC0, 0, 0, 0, 0x80],
            shifts: [5, 0, 0, 0, 7],
        };
        let children: Vec<ChildEntry> = (0..8)
            .map(|i| match i % 3 {
                0 => ChildEntry::Internal { word: i * 10 },
                1 => ChildEntry::Leaf {
                    word: i * 10 + 1,
                    pos: i % 30,
                },
                _ => ChildEntry::Null,
            })
            .collect();
        write_internal(&mut word, &header, &children).unwrap();
        assert_eq!(read_header(&word), header);
        for (i, c) in children.iter().enumerate() {
            assert_eq!(read_child(&word, i), *c, "child {i}");
        }
    }

    #[test]
    fn internal_node_with_max_children_fits() {
        let mut word = zero_word();
        let children = vec![
            ChildEntry::Leaf {
                word: 4094,
                pos: 29
            };
            MAX_CUTS as usize
        ];
        write_internal(&mut word, &NodeHeader::identity(), &children).unwrap();
        assert_eq!(
            read_child(&word, 255),
            ChildEntry::Leaf {
                word: 4094,
                pos: 29
            }
        );
    }

    #[test]
    fn internal_node_rejects_bad_input() {
        let mut word = zero_word();
        let too_many = vec![ChildEntry::Null; MAX_CUTS as usize + 1];
        assert!(matches!(
            write_internal(&mut word, &NodeHeader::identity(), &too_many),
            Err(EncodeError::TooManyChildren { .. })
        ));
        let bad_addr = vec![ChildEntry::Internal { word: 0x1000 }];
        assert!(matches!(
            write_internal(&mut word, &NodeHeader::identity(), &bad_addr),
            Err(EncodeError::AddressTooLarge { address: 0x1000 })
        ));
    }

    #[test]
    fn header_child_index_single_dimension() {
        // 4 cuts on the source address at the root: mask the top two bits of
        // the 8 MSBs and shift them down to form indices 0..3.
        let header = NodeHeader {
            masks: [0xC0, 0, 0, 0, 0],
            shifts: [6, 0, 0, 0, 0],
        };
        let spec = pclass_types::DimensionSpec::FIVE_TUPLE;
        for (addr, expect) in [
            (0x0000_0000u32, 0u32),
            (0x4000_0000, 1),
            (0x8000_0000, 2),
            (0xFFFF_FFFF, 3),
        ] {
            let pkt = PacketHeader::five_tuple(addr, 0, 0, 0, 0);
            assert_eq!(header.child_index(&pkt.msb8(&spec)), expect);
        }
    }

    #[test]
    fn header_child_index_two_dimensions() {
        // 4 cuts on src address (2 bits, high digit) and 2 cuts on protocol
        // (1 bit, low digit): index = src_bits * 2 + proto_bit.
        let header = NodeHeader {
            masks: [0xC0, 0, 0, 0, 0x80],
            shifts: [5, 0, 0, 0, 7],
        };
        let spec = pclass_types::DimensionSpec::FIVE_TUPLE;
        let pkt = PacketHeader::five_tuple(0x8000_0000, 0, 0, 0, 0x80);
        assert_eq!(header.child_index(&pkt.msb8(&spec)), 2 * 2 + 1);
        let pkt = PacketHeader::five_tuple(0x4000_0000, 0, 0, 0, 0x00);
        assert_eq!(header.child_index(&pkt.msb8(&spec)), 2);
    }

    proptest! {
        #[test]
        fn prop_rule_roundtrip(
            src_len in 0u8..=32, dst_len in 0u8..=32,
            src_addr: u32, dst_addr: u32,
            sp_lo in 0u16..=u16::MAX, sp_w in 0u16..1000,
            dp_lo in 0u16..=u16::MAX, dp_w in 0u16..1000,
            proto in proptest::option::of(0u8..=255),
            id in 0u32..=0xFFFF,
            pos in 0usize..RULES_PER_WORD,
            end: bool,
        ) {
            let mut builder = RuleBuilder::new(id)
                .src_prefix(src_addr, src_len)
                .dst_prefix(dst_addr, dst_len)
                .src_port_range(sp_lo, sp_lo.saturating_add(sp_w))
                .dst_port_range(dp_lo, dp_lo.saturating_add(dp_w));
            if let Some(p) = proto {
                builder = builder.protocol(p);
            }
            let rule = builder.build();
            let mut word = zero_word();
            write_rule(&mut word, pos, &rule, end).unwrap();
            let decoded = read_rule(&word, pos);
            prop_assert_eq!(decoded.ranges, rule.ranges);
            prop_assert_eq!(decoded.id, id);
            prop_assert_eq!(decoded.end_of_leaf, end);
        }
    }
}
