//! Bit-level access to 4800-bit memory words.
//!
//! A memory word is represented as `[u64; WORD_LIMBS]` with bit 0 of limb 0
//! being bit 0 of the word.  Fields written by the encoders never exceed 64
//! bits, but they routinely straddle a limb boundary, so the helpers handle
//! the two-limb case explicitly.

use crate::WORD_LIMBS;

/// One 4800-bit memory word.
pub type Word = [u64; WORD_LIMBS];

/// A zeroed memory word.
pub fn zero_word() -> Word {
    [0u64; WORD_LIMBS]
}

/// Writes `len` bits of `value` (little-endian bit order) at bit offset
/// `offset` of the word.
///
/// # Panics
/// Panics if `len` is 0 or greater than 64, if the field would run past the
/// end of the word, or if `value` does not fit in `len` bits.
pub fn set_bits(word: &mut Word, offset: usize, len: usize, value: u64) {
    assert!((1..=64).contains(&len), "field length {len} out of range");
    assert!(
        offset + len <= WORD_LIMBS * 64,
        "field [{offset}, {}) exceeds the word",
        offset + len
    );
    if len < 64 {
        assert!(
            value < (1u64 << len),
            "value {value:#x} does not fit in {len} bits"
        );
    }
    let limb = offset / 64;
    let bit = offset % 64;
    if bit + len <= 64 {
        let mask = if len == 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << bit
        };
        word[limb] = (word[limb] & !mask) | (value << bit);
    } else {
        let low_len = 64 - bit;
        let high_len = len - low_len;
        let low_mask = ((1u64 << low_len) - 1) << bit;
        word[limb] = (word[limb] & !low_mask) | ((value & ((1u64 << low_len) - 1)) << bit);
        let high_mask = (1u64 << high_len) - 1;
        word[limb + 1] = (word[limb + 1] & !high_mask) | (value >> low_len);
    }
}

/// Reads `len` bits at bit offset `offset` of the word.
///
/// # Panics
/// Panics if `len` is 0 or greater than 64 or the field runs past the word.
pub fn get_bits(word: &Word, offset: usize, len: usize) -> u64 {
    assert!((1..=64).contains(&len), "field length {len} out of range");
    assert!(
        offset + len <= WORD_LIMBS * 64,
        "field [{offset}, {}) exceeds the word",
        offset + len
    );
    let limb = offset / 64;
    let bit = offset % 64;
    if bit + len <= 64 {
        let raw = word[limb] >> bit;
        if len == 64 {
            raw
        } else {
            raw & ((1u64 << len) - 1)
        }
    } else {
        let low_len = 64 - bit;
        let high_len = len - low_len;
        let low = word[limb] >> bit;
        let high = word[limb + 1] & ((1u64 << high_len) - 1);
        low | (high << low_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_within_one_limb() {
        let mut w = zero_word();
        set_bits(&mut w, 3, 12, 0xABC);
        assert_eq!(get_bits(&w, 3, 12), 0xABC);
        // Neighbouring bits untouched.
        assert_eq!(get_bits(&w, 0, 3), 0);
        assert_eq!(get_bits(&w, 15, 8), 0);
    }

    #[test]
    fn roundtrip_across_limb_boundary() {
        let mut w = zero_word();
        set_bits(&mut w, 60, 16, 0xBEEF);
        assert_eq!(get_bits(&w, 60, 16), 0xBEEF);
        assert_eq!(get_bits(&w, 0, 60), 0);
        assert_eq!(get_bits(&w, 76, 20), 0);
    }

    #[test]
    fn full_64_bit_field() {
        let mut w = zero_word();
        set_bits(&mut w, 64, 64, u64::MAX);
        assert_eq!(get_bits(&w, 64, 64), u64::MAX);
        set_bits(&mut w, 64, 64, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_bits(&w, 64, 64), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn overwrite_clears_previous_value() {
        let mut w = zero_word();
        set_bits(&mut w, 10, 8, 0xFF);
        set_bits(&mut w, 10, 8, 0x01);
        assert_eq!(get_bits(&w, 10, 8), 0x01);
    }

    #[test]
    fn last_bits_of_word_are_addressable() {
        let mut w = zero_word();
        set_bits(&mut w, 4799, 1, 1);
        assert_eq!(get_bits(&w, 4799, 1), 1);
        set_bits(&mut w, 4736, 64, 42);
        assert_eq!(get_bits(&w, 4736, 64), 42);
    }

    #[test]
    #[should_panic]
    fn out_of_range_field_panics() {
        let mut w = zero_word();
        set_bits(&mut w, 4790, 16, 1);
    }

    #[test]
    #[should_panic]
    fn oversized_value_panics() {
        let mut w = zero_word();
        set_bits(&mut w, 0, 4, 16);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(offset in 0usize..4700, len in 1usize..=64, value: u64) {
            prop_assume!(offset + len <= 4800);
            let value = if len == 64 { value } else { value & ((1u64 << len) - 1) };
            let mut w = zero_word();
            set_bits(&mut w, offset, len, value);
            prop_assert_eq!(get_bits(&w, offset, len), value);
        }

        #[test]
        fn prop_disjoint_fields_do_not_interfere(
            a_off in 0usize..2000, a_len in 1usize..=64, a_val: u64,
            gap in 0usize..100, b_len in 1usize..=64, b_val: u64,
        ) {
            let b_off = a_off + a_len + gap;
            prop_assume!(b_off + b_len <= 4800);
            let a_val = if a_len == 64 { a_val } else { a_val & ((1u64 << a_len) - 1) };
            let b_val = if b_len == 64 { b_val } else { b_val & ((1u64 << b_len) - 1) };
            let mut w = zero_word();
            set_bits(&mut w, a_off, a_len, a_val);
            set_bits(&mut w, b_off, b_len, b_val);
            prop_assert_eq!(get_bits(&w, a_off, a_len), a_val);
            prop_assert_eq!(get_bits(&w, b_off, b_len), b_val);
        }
    }
}
