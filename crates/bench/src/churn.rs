//! The live-update ("churn") workload behind `throughput --churn`.
//!
//! A churn cell measures one updatable classifier serving a trace through
//! the `pclass-engine` epoch-swap cell *while* a deterministic stream of
//! insert/delete bursts lands on the writer copy: the serving workers keep
//! draining batches on the previous snapshot as each burst publishes the
//! next generation.  The cell records
//!
//! * serving throughput over the churn window (packets served / wall),
//! * per-burst update latency percentiles (p50/p95/p99 of
//!   [`LiveClassifier::apply_batch`] wall time),
//! * the structure's own update counters ([`UpdateStats`]: in-place
//!   inserts vs overflow spills, amortized re-flattens), and
//! * a **correctness verdict**: after the stream drains, the final
//!   snapshot must classify the whole trace packet-for-packet like a
//!   from-scratch rebuild of the surviving ruleset (and like linear search
//!   over it) — this is the hard floor CI gates on.
//!
//! What lands and how is described by a [`ChurnProfile`] — the churn axis
//! of the scenario matrix (see `crate::scenario`):
//!
//! * **burst1** — the original 1 % delete+insert stream in bursts of 4,
//!   spread over ~2 trace passes;
//! * **deep10** — the same shape at 10 % of the ruleset, so slack
//!   exhaustion, overflow side-tables and amortized re-flattens are
//!   actually exercised;
//! * **delete-heavy** — a net *drain*: 10 % of the rules deleted with only
//!   one fresh insert per five deletes, the decommissioning pattern that
//!   leaves reusable slack behind;
//! * **sustained** — a stream paced against *served packets* through the
//!   [`pclass_engine::EngineConfig::progress`] hook, one update at a time
//!   stretched continuously across the whole serving window
//!   (machine-speed independent), modelling the steady low-rate update
//!   feed of a long-lived deployment rather than a one-off burst.
//!
//! Everything is derived from [`crate::WORKLOAD_SEED`], so the stream is
//! identical run to run and host to host.

use pclass_algos::update::{
    classify_live_linear, map_result, renumbered_ruleset, RuleUpdate, UpdatableClassifier,
};
use pclass_classbench::ClassBenchGenerator;
use pclass_engine::{EngineConfig, LiveClassifier};
use pclass_types::{LatencyPercentiles, Rule, RuleId, RuleSet, Trace, UpdateStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How the update stream is paced over the serving window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Bursts sleep wall-clock time between publishes: the whole stream is
    /// spread over roughly `passes` warmup-calibrated trace passes, each
    /// gap capped at `cap_ns` so a slow host cannot stall the cell.
    Bursty {
        /// Trace passes the stream is spread over.
        passes: f64,
        /// Upper bound on one inter-burst sleep, in nanoseconds.
        cap_ns: u64,
    },
    /// Bursts are paced against *served packets* through the
    /// [`EngineConfig::progress`] hook: burst `k` of `n` lands once
    /// `k/n` of `passes` trace passes' worth of packets has been served,
    /// so the stream stretches continuously across the whole serving
    /// window regardless of machine speed.
    Sustained {
        /// Trace passes the stream is stretched across.
        passes: f64,
    },
}

/// How a churn cell is driven.  The update stream itself is built
/// separately (see [`ChurnProfile::stream`] / [`churn_updates`]) and passed
/// to [`run_churn`], so the config only shapes *how* the stream lands, not
/// what is in it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Serving worker shards while the stream lands.
    pub workers: usize,
    /// Updates per published burst.
    pub burst_ops: usize,
    /// Engine sub-batch size (smaller batches pick up generations sooner).
    pub batch: usize,
    /// How bursts are spaced over the serving window.
    pub pacing: Pacing,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            workers: 2,
            burst_ops: 4,
            batch: 256,
            pacing: Pacing::Bursty {
                passes: 2.0,
                cap_ns: 5_000_000,
            },
        }
    }
}

/// The churn axis of the scenario matrix: a named, fully deterministic
/// update workload (stream shape + pacing).  See the module docs for what
/// each profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnProfile {
    /// 1 % delete+insert pairs in bursts of 4 (the original PR-4 workload).
    Burst1,
    /// 10 % delete+insert pairs — deep churn that forces slack exhaustion
    /// and amortized re-flattens on the arenas.
    Deep10,
    /// A net drain: 10 % deletes with one fresh insert per five deletes.
    DeleteHeavy,
    /// 2 % of the ruleset landing one update at a time, paced continuously
    /// across the whole serving window against served packets.
    Sustained,
}

impl ChurnProfile {
    /// Every churn profile, in matrix order.
    pub const ALL: [ChurnProfile; 4] = [
        ChurnProfile::Burst1,
        ChurnProfile::Deep10,
        ChurnProfile::DeleteHeavy,
        ChurnProfile::Sustained,
    ];

    /// The tag recorded in `BENCH_throughput.json` cells (schema v4).
    pub fn tag(self) -> &'static str {
        match self {
            ChurnProfile::Burst1 => "burst1",
            ChurnProfile::Deep10 => "deep10",
            ChurnProfile::DeleteHeavy => "delete-heavy",
            ChurnProfile::Sustained => "sustained",
        }
    }

    /// Builds the profile's deterministic update stream for a ruleset.
    pub fn stream(self, ruleset: &RuleSet) -> Vec<RuleUpdate> {
        match self {
            ChurnProfile::Burst1 => churn_updates(ruleset, 0.01),
            ChurnProfile::Deep10 => churn_updates(ruleset, 0.10),
            ChurnProfile::DeleteHeavy => delete_heavy_updates(ruleset, 0.10, 5),
            ChurnProfile::Sustained => churn_updates(ruleset, 0.02),
        }
    }

    /// The cell configuration the profile is measured under.
    pub fn config(self) -> ChurnConfig {
        match self {
            ChurnProfile::Burst1 | ChurnProfile::Deep10 => ChurnConfig::default(),
            // Decommissioning lands in larger administrative sweeps.
            ChurnProfile::DeleteHeavy => ChurnConfig {
                burst_ops: 8,
                ..ChurnConfig::default()
            },
            // One update at a time, stretched across four trace passes of
            // actual serving progress.
            ChurnProfile::Sustained => ChurnConfig {
                burst_ops: 1,
                pacing: Pacing::Sustained { passes: 4.0 },
                ..ChurnConfig::default()
            },
        }
    }
}

/// Everything measured over one churn cell.
#[derive(Debug, Clone)]
pub struct ChurnMeasurement {
    /// Packets classified while the update stream was landing (clipped to
    /// the serving passes that completed inside the churn window, so the
    /// quiescent drain after the last burst is not counted).
    pub packets_served: u64,
    /// Wall-clock nanoseconds of the measured serving window.
    pub serve_wall_ns: u64,
    /// Millions of packets per second sustained under churn.
    pub mpps_under_churn: f64,
    /// Total updates applied (inserts + deletes).
    pub updates: u64,
    /// Number of published bursts (= generations).
    pub bursts: u64,
    /// Median per-burst apply latency (nanoseconds).
    pub update_p50_ns: u64,
    /// 95th-percentile per-burst apply latency.
    pub update_p95_ns: u64,
    /// 99th-percentile per-burst apply latency.
    pub update_p99_ns: u64,
    /// The structure's own update counters after the stream drained.
    pub update_stats: UpdateStats,
    /// Post-churn packet-for-packet agreement with a from-scratch rebuild
    /// of the surviving ruleset *and* with linear search over it.
    pub verified: bool,
}

/// Builds the deterministic update stream for a ruleset: `fraction`
/// of the rules is deleted (ids spread evenly across the priority range)
/// and the same number of fresh rules is inserted at new ids past the
/// current maximum, interleaved delete/insert so the live count stays
/// within one rule of the original throughout.
pub fn churn_updates(ruleset: &RuleSet, fraction: f64) -> Vec<RuleUpdate> {
    let len = ruleset.len();
    if len == 0 {
        return Vec::new();
    }
    // At least 2 pairs so every cell exercises both op kinds, but never
    // more deletes than there are rules (the spread formula would emit
    // duplicate delete ids otherwise).
    let ops = ((len as f64 * fraction).round() as usize).clamp(2.min(len), len);
    let style = pclass_classbench::SeedStyle::Acl;
    let fresh = ClassBenchGenerator::new(style, crate::WORKLOAD_SEED ^ 0xC0DE).generate(ops);
    let mut updates = Vec::with_capacity(ops * 2);
    for k in 0..ops {
        let delete_id = (k * len / ops) as RuleId;
        updates.push(RuleUpdate::Delete(delete_id));
        let insert_id = (len + k) as RuleId;
        updates.push(RuleUpdate::Insert(Rule::new(
            insert_id,
            fresh.rules()[k].ranges,
        )));
    }
    updates
}

/// Builds the deterministic *delete-heavy* stream: `fraction` of the rules
/// is deleted (ids spread evenly across the priority range) but only one
/// fresh rule is inserted per `reinsert_every` deletes, so the live set
/// drains — the decommissioning pattern that leaves reusable slack in the
/// flat arenas instead of claiming it back.
pub fn delete_heavy_updates(
    ruleset: &RuleSet,
    fraction: f64,
    reinsert_every: usize,
) -> Vec<RuleUpdate> {
    let len = ruleset.len();
    if len == 0 {
        return Vec::new();
    }
    let deletes = ((len as f64 * fraction).round() as usize).clamp(1, len);
    let reinsert_every = reinsert_every.max(1);
    let reinserts = deletes / reinsert_every;
    let style = pclass_classbench::SeedStyle::Acl;
    let fresh =
        ClassBenchGenerator::new(style, crate::WORKLOAD_SEED ^ 0xD7A1).generate(reinserts.max(1));
    let mut updates = Vec::with_capacity(deletes + reinserts);
    let mut inserted = 0usize;
    for k in 0..deletes {
        updates.push(RuleUpdate::Delete((k * len / deletes) as RuleId));
        if (k + 1) % reinsert_every == 0 && inserted < reinserts {
            updates.push(RuleUpdate::Insert(Rule::new(
                (len + inserted) as RuleId,
                fresh.rules()[inserted].ranges,
            )));
            inserted += 1;
        }
    }
    updates
}

/// Runs one churn cell: serve `trace` continuously on `config.workers`
/// shards while `updates` land in bursts, then verify the final snapshot
/// against `rebuild` applied to the surviving ruleset.
///
/// Returns an error string when an update is rejected (the stream is
/// constructed to be valid, so a rejection is a harness or structure bug).
pub fn run_churn<C>(
    classifier: C,
    rebuild: impl Fn(&RuleSet) -> C,
    trace: &Trace,
    updates: &[RuleUpdate],
    config: &ChurnConfig,
) -> Result<ChurnMeasurement, String>
where
    C: UpdatableClassifier + Clone + Send + Sync,
{
    let live = Arc::new(LiveClassifier::new(classifier));
    // The progress counter is the sustained-pacing hook: workers bump it
    // per sub-batch, and a `Pacing::Sustained` updater waits on it instead
    // of sleeping wall-clock time.  Attaching it is harmless under
    // wall-clock pacing (one relaxed fetch_add per sub-batch).
    let progress = Arc::new(AtomicU64::new(0));
    let engine = EngineConfig::new()
        .workers(config.workers)
        .batch_size(config.batch)
        .progress(Arc::clone(&progress))
        .live_engine(Arc::clone(&live));

    // One quiescent pass warms the structure and calibrates wall-clock
    // pacing, so "throughput under churn" actually overlaps serving with
    // updates instead of front-loading the stream.
    let warmup = engine.classify_trace(trace);
    let bursts: Vec<&[RuleUpdate]> = updates.chunks(config.burst_ops.max(1)).collect();
    let pace_ns = match config.pacing {
        Pacing::Bursty { passes, cap_ns } => ((passes * warmup.report.wall_ns as f64) as u64
            / bursts.len().max(1) as u64)
            .min(cap_ns),
        Pacing::Sustained { .. } => 0,
    };
    // Sustained pacing: burst k of n lands once k/n of `passes` trace
    // passes' worth of packets has been served *after* the warmup.
    let progress_base = progress.load(Ordering::Relaxed);
    let burst_threshold = |k: usize| -> u64 {
        match config.pacing {
            Pacing::Bursty { .. } => 0,
            Pacing::Sustained { passes } => {
                let window = passes * trace.len() as f64;
                progress_base + (window * k as f64 / bursts.len().max(1) as f64) as u64
            }
        }
    };

    let stop = AtomicBool::new(false);
    let mut latencies: Vec<u64> = Vec::with_capacity(bursts.len());
    let mut apply_error: Option<String> = None;
    let started = Instant::now();
    let (checkpoints, churn_end_ns) = std::thread::scope(|scope| {
        let engine_ref = &engine;
        let stop_ref = &stop;
        let started_ref = &started;
        let server = scope.spawn(move || {
            // Checkpoint (cumulative packets, elapsed) after every pass, so
            // the caller can clip the measurement to the churn window: the
            // pass that drains *after* the last burst would otherwise bias
            // "throughput under churn" toward the quiescent rate.
            let mut checkpoints: Vec<(u64, u64)> = Vec::new();
            let mut pkts = 0u64;
            loop {
                pkts += engine_ref.classify_trace(trace).report.pkts;
                checkpoints.push((pkts, started_ref.elapsed().as_nanos() as u64));
                if stop_ref.load(Ordering::Acquire) {
                    break;
                }
            }
            checkpoints
        });
        let mut server_died = false;
        'stream: for (k, burst) in bursts.iter().enumerate() {
            // Sustained: wait for the serving side to reach this burst's
            // progress threshold.  The serving loop keeps passing over the
            // trace until the stream ends, so progress always advances and
            // the wait terminates — unless the serving thread *dies* (a
            // panic inside classify_trace), which must abort the stream so
            // the join below surfaces the panic instead of this loop
            // spinning until the CI job timeout.
            let threshold = burst_threshold(k);
            while progress.load(Ordering::Relaxed) < threshold {
                if server.is_finished() {
                    server_died = true;
                    break 'stream;
                }
                std::thread::sleep(std::time::Duration::from_micros(20));
            }
            let t = Instant::now();
            if let Err(e) = live.apply_batch(burst) {
                apply_error = Some(e.to_string());
                break;
            }
            latencies.push(t.elapsed().as_nanos() as u64);
            if pace_ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(pace_ns));
            }
        }
        let churn_end_ns = started.elapsed().as_nanos() as u64;
        stop.store(true, Ordering::Release);
        // A server that finished before `stop` was set can only have
        // panicked; join propagates that panic as the cell's diagnostic.
        let checkpoints = server.join().expect("churn serving worker panicked");
        debug_assert!(!server_died, "join must have panicked first");
        (checkpoints, churn_end_ns)
    });
    if let Some(e) = apply_error {
        return Err(format!("update rejected mid-stream: {e}"));
    }
    // Clip to the last pass that completed within the churn window (fall
    // back to the first pass when the stream was shorter than one pass).
    let (packets_served, serve_wall_ns) = checkpoints
        .iter()
        .rev()
        .find(|&&(_, elapsed)| elapsed <= churn_end_ns)
        .or_else(|| checkpoints.first())
        .copied()
        .ok_or_else(|| "serving loop recorded no passes".to_string())?;

    // Post-churn verification on the final snapshot: one batched pass,
    // compared packet-for-packet against (a) a from-scratch rebuild of the
    // surviving ruleset and (b) linear search over it.
    let snapshot = live.snapshot();
    let final_live = snapshot.live_rules();
    let spec = snapshot.spec();
    let (rebuilt_set, id_map) = renumbered_ruleset("post-churn", spec, &final_live);
    let rebuilt = rebuild(&rebuilt_set);
    let mut served = Vec::with_capacity(trace.len());
    let headers: Vec<pclass_types::PacketHeader> = trace.headers().copied().collect();
    snapshot.classify_batch(&headers, &mut served);
    let mut rebuilt_results = Vec::with_capacity(trace.len());
    rebuilt.classify_batch(&headers, &mut rebuilt_results);
    let verified = headers.iter().enumerate().all(|(i, pkt)| {
        let updated = served[i];
        updated == map_result(rebuilt_results[i], &id_map)
            && updated == classify_live_linear(&final_live, pkt)
    });

    let update_latency = LatencyPercentiles::from_samples(&mut latencies);
    Ok(ChurnMeasurement {
        packets_served,
        serve_wall_ns,
        mpps_under_churn: if serve_wall_ns == 0 {
            0.0
        } else {
            packets_served as f64 * 1e3 / serve_wall_ns as f64
        },
        updates: updates.len() as u64,
        bursts: bursts.len() as u64,
        update_p50_ns: update_latency.p50_ns,
        update_p95_ns: update_latency.p95_ns,
        update_p99_ns: update_latency.p99_ns,
        update_stats: live.with_writer(|w| w.update_stats()),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl_ruleset;
    use pclass_algos::{HiCutsClassifier, HiCutsConfig};

    #[test]
    fn churn_stream_is_deterministic_and_balanced() {
        let rs = acl_ruleset(200);
        let a = churn_updates(&rs, 0.01);
        let b = churn_updates(&rs, 0.01);
        assert_eq!(a, b);
        let deletes = a
            .iter()
            .filter(|u| matches!(u, RuleUpdate::Delete(_)))
            .count();
        let inserts = a.len() - deletes;
        assert_eq!(deletes, inserts);
        assert_eq!(deletes, 2); // 1% of 200
                                // Fresh ids never collide with the base ruleset.
        for u in &a {
            if let RuleUpdate::Insert(rule) = u {
                assert!(rule.id >= rs.len() as u32);
            }
        }
    }

    #[test]
    fn churn_stream_never_deletes_the_same_id_twice_on_tiny_rulesets() {
        let one = acl_ruleset(2_191).truncated(1, "one");
        let updates = churn_updates(&one, 0.01);
        assert_eq!(updates.len(), 2, "one delete+insert pair on a 1-rule set");
        assert!(matches!(updates[0], RuleUpdate::Delete(0)));
        let empty = RuleSet::new("empty", *one.spec(), vec![]).expect("empty ruleset");
        assert!(churn_updates(&empty, 0.5).is_empty());
    }

    #[test]
    fn delete_heavy_stream_drains_the_live_set() {
        let rs = acl_ruleset(200);
        let a = delete_heavy_updates(&rs, 0.10, 5);
        assert_eq!(a, delete_heavy_updates(&rs, 0.10, 5), "deterministic");
        let deletes = a
            .iter()
            .filter(|u| matches!(u, RuleUpdate::Delete(_)))
            .count();
        let inserts = a.len() - deletes;
        assert_eq!(deletes, 20, "10% of 200");
        assert_eq!(inserts, 4, "one reinsert per five deletes");
        // Delete ids are distinct and inside the base id range; insert ids
        // are fresh.
        let mut seen = std::collections::HashSet::new();
        for u in &a {
            match u {
                RuleUpdate::Delete(id) => {
                    assert!(seen.insert(*id), "duplicate delete {id}");
                    assert!(*id < rs.len() as u32);
                }
                RuleUpdate::Insert(rule) => assert!(rule.id >= rs.len() as u32),
            }
        }
        // Tiny and empty rulesets stay valid.
        let one = acl_ruleset(2_191).truncated(1, "one");
        let tiny = delete_heavy_updates(&one, 0.10, 5);
        assert_eq!(tiny.len(), 1, "a single delete, no reinsert");
        let empty = RuleSet::new("empty", *one.spec(), vec![]).expect("empty ruleset");
        assert!(delete_heavy_updates(&empty, 0.5, 5).is_empty());
    }

    #[test]
    fn profiles_build_distinct_streams_and_configs() {
        let rs = acl_ruleset(500);
        for profile in ChurnProfile::ALL {
            let stream = profile.stream(&rs);
            assert!(!stream.is_empty(), "{}", profile.tag());
            assert_eq!(
                stream,
                profile.stream(&rs),
                "{} deterministic",
                profile.tag()
            );
        }
        assert!(
            ChurnProfile::Deep10.stream(&rs).len() > 5 * ChurnProfile::Burst1.stream(&rs).len(),
            "deep churn must be an order of magnitude more updates"
        );
        let drain = ChurnProfile::DeleteHeavy.stream(&rs);
        let deletes = drain
            .iter()
            .filter(|u| matches!(u, RuleUpdate::Delete(_)))
            .count();
        assert!(deletes > (drain.len() - deletes) * 2, "net drain");
        assert_eq!(
            ChurnProfile::Sustained.config().pacing,
            Pacing::Sustained { passes: 4.0 }
        );
        assert_eq!(ChurnProfile::Sustained.config().burst_ops, 1);
        // Tags are distinct (they key regression-gate cells).
        let tags: std::collections::HashSet<_> =
            ChurnProfile::ALL.iter().map(|p| p.tag()).collect();
        assert_eq!(tags.len(), ChurnProfile::ALL.len());
    }

    #[test]
    fn sustained_churn_cell_paces_against_progress_and_verifies() {
        let rs = acl_ruleset(150);
        let trace = crate::trace_for(&rs, 500);
        let updates = ChurnProfile::Sustained.stream(&rs);
        let config = ChurnConfig {
            workers: 2,
            batch: 32,
            ..ChurnProfile::Sustained.config()
        };
        let build =
            |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten();
        let m = run_churn(build(&rs), build, &trace, &updates, &config).unwrap();
        assert!(m.verified, "post-sustained-churn mismatch");
        assert_eq!(m.bursts, updates.len() as u64, "one update per burst");
        // The stream is stretched across the window: serving must have
        // covered several passes' worth of packets while it landed.
        assert!(
            m.packets_served >= 2 * trace.len() as u64,
            "served only {} packets over a 4-pass sustained window",
            m.packets_served
        );
    }

    #[test]
    fn churn_cell_runs_and_verifies_on_a_small_workload() {
        let rs = acl_ruleset(150);
        let trace = crate::trace_for(&rs, 600);
        let updates = churn_updates(&rs, 0.05);
        let config = ChurnConfig {
            workers: 2,
            burst_ops: 3,
            batch: 64,
            ..ChurnConfig::default()
        };
        let build =
            |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten();
        let m = run_churn(build(&rs), build, &trace, &updates, &config).unwrap();
        assert!(m.verified, "post-churn mismatch");
        assert_eq!(m.updates, updates.len() as u64);
        assert!(m.bursts >= 1);
        assert!(m.packets_served >= trace.len() as u64);
        assert!(m.update_p50_ns > 0);
        assert!(m.update_p99_ns >= m.update_p50_ns);
        let stats = m.update_stats;
        assert_eq!(stats.inserts, 8); // ceil-ish of 5% of 150 = 8 pairs
        assert_eq!(stats.deletes, 8);
    }
}
