//! The scenario matrix behind `throughput`: one declarative description of
//! every workload cell the serving harness measures.
//!
//! A scenario is a point in the four-axis workload space
//!
//! * **ruleset** — ClassBench seed style × size, along the extended
//!   [`pclass_classbench::sweep_sizes`] ladder (acl to 64 k rules, fw/ipc
//!   to 10 k);
//! * **trace profile** — [`TraceProfile::Uniform`] (the ClassBench default
//!   mix) or [`TraceProfile::Zipf`] (seeded Zipf-skewed popularity that
//!   repeatedly hits a small set of hot rules);
//! * **churn profile** — quiescent (`churn: None`) or one of the
//!   [`ChurnProfile`] live-update workloads (1 % bursts, 10 % deep churn,
//!   a delete-heavy drain, a sustained progress-paced stream);
//! * **worker count** — the [`worker_ladder`] the quiescent cells sweep;
//! * **hot cache** — [`Scenario::cache`] serves the cell through the
//!   popularity-adaptive hot-flow cache (`pclass_algos::hotcache`); the
//!   quick matrix gates a Zipf showcase cell *and* a uniform control
//!   cell so both the speed-up and the no-tax claim are CI-checked.
//!
//! [`matrix`] is the **single source of truth** for both sweep modes: the
//! quick matrix (CI's per-PR `perf-smoke` gate) is exactly the
//! `quick`-tagged subset of the full matrix (the weekly `perf-full`
//! sweep), so a cell can never exist in one mode's list but not the
//! other's — the unit tests pin that invariant, plus the presence of the
//! cells the CI gate promises (a 64 k-rule cell, deep-churn, delete-heavy,
//! sustained and Zipf-skew cells, all in quick).
//!
//! Cells that cannot run are *explicit*: RFC past its phase-table budget
//! and the hardware models past their address space stay visible as skip
//! records (see [`crate::RosterScope`]), never silent gaps.

use crate::churn::ChurnProfile;
use crate::RosterScope;
use pclass_classbench::{sweep_sizes, SeedStyle, TraceGenerator};
use pclass_types::{RuleSet, Trace};

/// Exponent of the [`TraceProfile::Zipf`] popularity law (rank `k` drawn
/// with probability ∝ `1/k`): on a 2 000-rule set the hottest 1 % of the
/// rules draws roughly 40 % of the directed packets.
pub const ZIPF_EXPONENT: f64 = 1.0;

/// Worker counts the full sweep measures each quiescent cell at.
pub const FULL_WORKER_LADDER: &[usize] = &[1, 2, 4];

/// Worker counts quick mode measures — a subset of the full ladder, so
/// every quick cell has a full-matrix partner.
pub const QUICK_WORKER_LADDER: &[usize] = &[1, 4];

/// The trace-profile axis of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceProfile {
    /// The ClassBench default mix: mild Pareto-style popularity skew, 10 %
    /// background packets, short bursts.
    Uniform,
    /// Seeded Zipf popularity ([`ZIPF_EXPONENT`]) over rule ranks — the
    /// heavily skewed traffic a production classifier sees, repeatedly
    /// hitting the same hot rules (and therefore the same tree paths).
    Zipf,
}

impl TraceProfile {
    /// Every trace profile, in matrix order.
    pub const ALL: [TraceProfile; 2] = [TraceProfile::Uniform, TraceProfile::Zipf];

    /// The tag recorded in `BENCH_throughput.json` cells (schema v4).
    pub fn tag(self) -> &'static str {
        match self {
            TraceProfile::Uniform => "uniform",
            TraceProfile::Zipf => "zipf",
        }
    }

    /// Builds this profile's deterministic trace for a ruleset.
    pub fn trace(self, ruleset: &RuleSet, packets: usize) -> Trace {
        match self {
            TraceProfile::Uniform => crate::trace_for(ruleset, packets),
            TraceProfile::Zipf => TraceGenerator::new(ruleset, crate::WORKLOAD_SEED ^ 0x51FF)
                .zipf(ZIPF_EXPONENT)
                .generate_named(packets, format!("{}_zipf_trace", ruleset.name())),
        }
    }
}

/// One cell family of the scenario matrix: a ruleset × trace profile ×
/// churn profile (× hot-cache toggle).  Quiescent cells additionally
/// sweep the worker ladder and the whole classifier roster; churn cells
/// serve the updatable classifiers under their profile's
/// [`ChurnProfile::config`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// ClassBench seed style of the ruleset.
    pub style: SeedStyle,
    /// Ruleset size (a rung of [`sweep_sizes`]).
    pub rules: usize,
    /// Trace profile the cell is served with.
    pub trace: TraceProfile,
    /// Live-update profile; `None` is a quiescent cell.
    pub churn: Option<ChurnProfile>,
    /// Whether the engine serves through the popularity-adaptive hot-flow
    /// cache (`pclass_algos::hotcache`, sized by the harness to the trace's
    /// flow working set).  Cached cells
    /// carry a `+cache` profile-tag suffix so the regression gate compares
    /// them against their own baseline, never against the uncached twin.
    pub cache: bool,
    /// Whether the cell is part of the quick (per-PR CI) subset.
    pub quick: bool,
}

impl Scenario {
    /// Builds the scenario's ruleset (acl cells nest via
    /// [`crate::acl_ruleset`]'s shared-prefix truncation).
    pub fn ruleset(&self) -> RuleSet {
        match self.style {
            SeedStyle::Acl => crate::acl_ruleset(self.rules),
            style => crate::styled_ruleset(style, self.rules),
        }
    }

    /// The classifier scope of this cell: hardware models are excluded a
    /// priori at ≥32 k rules (explicit skips).
    pub fn scope(&self) -> RosterScope {
        if self.rules >= 32_000 {
            RosterScope::Software
        } else {
            RosterScope::Full
        }
    }

    /// The profile tag recorded in schema-v6 cells and used by the
    /// regression gate to match cells like-for-like: the trace tag for
    /// quiescent cells, `<trace>+churn-<profile>` for churn cells, with a
    /// `+cache` suffix when the cell serves through the hot-flow cache.
    pub fn profile_tag(&self) -> String {
        let base = match self.churn {
            None => self.trace.tag().to_string(),
            Some(churn) => format!("{}+churn-{}", self.trace.tag(), churn.tag()),
        };
        if self.cache {
            format!("{base}+cache")
        } else {
            base
        }
    }
}

/// The worker ladder of a sweep mode.
pub fn worker_ladder(quick: bool) -> &'static [usize] {
    if quick {
        QUICK_WORKER_LADDER
    } else {
        FULL_WORKER_LADDER
    }
}

/// **The** scenario matrix — the single declarative list both sweep modes
/// are derived from.  The harness groups cells by ruleset (in first
/// appearance order), so each ruleset and its classifier roster are built
/// once however many trace/churn cells share them.
pub fn matrix() -> Vec<Scenario> {
    let quiescent = |style, rules, trace, quick| Scenario {
        style,
        rules,
        trace,
        churn: None,
        cache: false,
        quick,
    };
    let churn = |style, rules, trace, profile, quick| Scenario {
        style,
        rules,
        trace,
        churn: Some(profile),
        cache: false,
        quick,
    };
    let cached = |style, rules, trace, quick| Scenario {
        style,
        rules,
        trace,
        churn: None,
        cache: true,
        quick,
    };

    let mut cells = Vec::new();
    // Ruleset axis: every rung of the extended generation ladder serves
    // the uniform trace; quick keeps the small acl/fw/ipc rows it always
    // gated plus the new 64 k ceiling so the top of the envelope is
    // regression-gated on every PR.
    for style in [SeedStyle::Acl, SeedStyle::Fw, SeedStyle::Ipc] {
        for &rules in sweep_sizes(style) {
            let quick = match style {
                SeedStyle::Acl => matches!(rules, 500 | 2_000 | 64_000),
                _ => rules == 2_000,
            };
            cells.push(quiescent(style, rules, TraceProfile::Uniform, quick));
        }
    }
    // Skew axis: Zipf-hot traffic on the acl row at 2 k (quick, CI-gated)
    // and 10 k (weekly).
    cells.push(quiescent(SeedStyle::Acl, 2_000, TraceProfile::Zipf, true));
    cells.push(quiescent(SeedStyle::Acl, 10_000, TraceProfile::Zipf, false));
    // Hot-cache axis (both quick, CI-gated on every PR): the Zipf cell is
    // the cache's home turf — its acceptance bar is beating the uncached
    // zipf cell above — while the uniform cell is the *control*: near the
    // cache's worst case, it guards against the cache taxing cold traffic.
    cells.push(cached(SeedStyle::Acl, 2_000, TraceProfile::Zipf, true));
    cells.push(cached(SeedStyle::Acl, 2_000, TraceProfile::Uniform, true));
    // Churn axis (runs under --churn): the original 1 % burst on all three
    // 2 k families, plus the deep, drain and sustained profiles — one of
    // each in quick on the acl row, the cross-family and larger variants
    // weekly.  One combined skew × sustained cell probes the interaction.
    let acl = SeedStyle::Acl;
    let uni = TraceProfile::Uniform;
    cells.push(churn(acl, 2_000, uni, ChurnProfile::Burst1, true));
    cells.push(churn(
        SeedStyle::Fw,
        2_000,
        uni,
        ChurnProfile::Burst1,
        false,
    ));
    cells.push(churn(
        SeedStyle::Ipc,
        2_000,
        uni,
        ChurnProfile::Burst1,
        false,
    ));
    cells.push(churn(acl, 2_000, uni, ChurnProfile::Deep10, true));
    cells.push(churn(
        SeedStyle::Fw,
        2_000,
        uni,
        ChurnProfile::Deep10,
        false,
    ));
    cells.push(churn(acl, 2_000, uni, ChurnProfile::DeleteHeavy, true));
    cells.push(churn(
        SeedStyle::Ipc,
        2_000,
        uni,
        ChurnProfile::DeleteHeavy,
        false,
    ));
    cells.push(churn(acl, 2_000, uni, ChurnProfile::Sustained, true));
    cells.push(churn(acl, 10_000, uni, ChurnProfile::Sustained, false));
    cells.push(churn(
        acl,
        2_000,
        TraceProfile::Zipf,
        ChurnProfile::Sustained,
        false,
    ));
    cells
}

/// The scenarios of one sweep mode: the full matrix, or its quick-tagged
/// subset.  Because both modes filter the *same* list, quick ⊆ full by
/// construction.
pub fn scenarios(quick: bool) -> Vec<Scenario> {
    matrix().into_iter().filter(|s| !quick || s.quick).collect()
}

/// The tenant-count × size-distribution axis of the multi-tenant cells
/// (runs under `throughput --tenants`).  Sizes are rungs of the acl
/// ruleset ladder; "skewed" mixes pair one large tenant with many small
/// ones — the shape cross-tenant batching exists for (a 500-rule tenant
/// must not waste a core, and must not be starved by its big neighbour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantMix {
    /// 1 tenant × 2 000 rules — the degenerate mix, pinning the router to
    /// the single-tenant serving path.
    Uni1,
    /// 4 tenants × 2 000 rules, uniform.
    Uni4,
    /// 1 × 10 000 + 3 × 2 000 rules, skewed.
    Skew4,
    /// 16 tenants × 500 rules, uniform.
    Uni16,
    /// 1 × 10 000 + 15 × 500 rules — the 16-tenant mixed-size acceptance
    /// cell: one big tenant sharing the pool with fifteen small ones.
    Skew16,
}

impl TenantMix {
    /// Every tenant mix, in matrix order.
    pub const ALL: [TenantMix; 5] = [
        TenantMix::Uni1,
        TenantMix::Uni4,
        TenantMix::Skew4,
        TenantMix::Uni16,
        TenantMix::Skew16,
    ];

    /// Per-tenant ruleset sizes, in tenant-id order.
    pub fn sizes(self) -> Vec<usize> {
        match self {
            TenantMix::Uni1 => vec![2_000],
            TenantMix::Uni4 => vec![2_000; 4],
            TenantMix::Skew4 => {
                let mut sizes = vec![10_000];
                sizes.extend([2_000; 3]);
                sizes
            }
            TenantMix::Uni16 => vec![500; 16],
            TenantMix::Skew16 => {
                let mut sizes = vec![10_000];
                sizes.extend([500; 15]);
                sizes
            }
        }
    }

    /// Number of tenants in the mix.
    pub fn tenants(self) -> usize {
        self.sizes().len()
    }

    /// Short tag of the mix, the suffix of the cell's profile tag.
    pub fn tag(self) -> &'static str {
        match self {
            TenantMix::Uni1 => "uni1",
            TenantMix::Uni4 => "uni4",
            TenantMix::Skew4 => "skew4",
            TenantMix::Uni16 => "uni16",
            TenantMix::Skew16 => "skew16",
        }
    }

    /// The ruleset-mix name recorded in the cell's `ruleset` field, e.g.
    /// `acl1_2000x4` or `acl1_10000+15x500`.
    pub fn mix_name(self) -> String {
        match self {
            TenantMix::Uni1 => "acl1_2000x1".to_string(),
            TenantMix::Uni4 => "acl1_2000x4".to_string(),
            TenantMix::Skew4 => "acl1_10000+3x2000".to_string(),
            TenantMix::Uni16 => "acl1_500x16".to_string(),
            TenantMix::Skew16 => "acl1_10000+15x500".to_string(),
        }
    }

    /// Per-tenant scheduling weights of the *weighted* variant of the mix,
    /// in tenant order: the big tenant of a skewed mix carries weight 4,
    /// everyone else weight 1 (uniform mixes are all 1 — their weighted
    /// variant is the unweighted cell).  Used when
    /// [`TenantScenario::weighted`] is set.
    pub fn weights(self) -> Vec<u32> {
        let mut weights = vec![1u32; self.tenants()];
        if matches!(self, TenantMix::Skew4 | TenantMix::Skew16) {
            weights[0] = 4;
        }
        weights
    }
}

/// One tenant's workload inside a tenant cell: an isolated ruleset (its
/// own ClassBench seed, so tenants never share rules) and its own trace.
#[derive(Debug, Clone)]
pub struct TenantWorkload {
    /// The tenant's roster name (e.g. `acl1_500#t3`).
    pub name: String,
    /// The tenant's ruleset.
    pub ruleset: RuleSet,
    /// The tenant's traffic, in its own arrival order.
    pub trace: Trace,
}

/// One multi-tenant cell of the scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantScenario {
    /// The tenant-count × size-distribution mix.
    pub mix: TenantMix,
    /// Worker count of the shared pool.
    pub workers: usize,
    /// Whether tenant 0's ruleset churns mid-trace (a scripted update
    /// burst lands between measurement passes), so churn *isolation* —
    /// neighbours keep serving their unchanged rulesets correctly — is
    /// measured, not just unit-tested.
    pub churn: bool,
    /// Whether the router serves through per-tenant hot-flow caches
    /// (the configured capacity is sliced across the roster by cache
    /// share).
    pub cache: bool,
    /// Whether the roster declares the mix's non-uniform scheduling
    /// weights ([`TenantMix::weights`]) and offers load in weight
    /// proportion — the weighted-fairness cells, hard-checked against
    /// SLO-relative shares and the weighted Jain index.
    pub weighted: bool,
    /// Whether the cell exercises runtime admission/eviction mid-trace:
    /// after the static measurement, a controller thread evicts and
    /// readmits the last small tenant while the router keeps serving,
    /// and the cell records churn-phase throughput against the static
    /// phase.
    pub admission: bool,
    /// Whether tenant 0 receives a *sustained*, progress-paced update
    /// stream through `live(t)` while the router serves (the tenant
    /// analogue of [`ChurnProfile::Sustained`]), instead of the
    /// between-pass burst of [`TenantScenario::churn`].
    pub sustained: bool,
    /// Whether the cell is part of the quick (per-PR CI) subset.
    pub quick: bool,
}

impl TenantScenario {
    /// The profile tag recorded in schema-v7 tenant cells, e.g.
    /// `uniform+tenants-skew16+weighted` or
    /// `uniform+tenants-uni4+churn+cache` — distinct per cell, so the
    /// regression gate keys tenant cells like-for-like (a `churn` token —
    /// including the `churn-sustained` form — also selects the gate's
    /// wider churn tolerance).
    pub fn profile_tag(&self) -> String {
        let mut tag = format!("uniform+tenants-{}", self.mix.tag());
        if self.weighted {
            tag.push_str("+weighted");
        }
        if self.admission {
            tag.push_str("+admission");
        }
        if self.churn {
            tag.push_str("+churn");
        }
        if self.sustained {
            tag.push_str("+churn-sustained");
        }
        if self.cache {
            tag.push_str("+cache");
        }
        tag
    }

    /// The per-tenant scheduling weights this cell declares on its
    /// [`pclass_engine::TenantSpec`]s: the mix's weights when
    /// [`TenantScenario::weighted`], all-1 otherwise.
    pub fn weights(&self) -> Vec<u32> {
        if self.weighted {
            self.mix.weights()
        } else {
            vec![1; self.mix.tenants()]
        }
    }

    /// Builds the per-tenant workloads.  Unweighted cells split a total
    /// packet budget evenly across tenants; weighted cells split it in
    /// *weight proportion* (each tenant offers `weight × unit` packets),
    /// so the weighted-fair interleave drains every trace together and
    /// each tenant's offered share equals its weight share exactly.  The
    /// floor of 256 packets per weight unit keeps every tenant's
    /// percentiles resting on real samples.  Deterministic: each tenant's
    /// ruleset and trace are derived from [`crate::WORKLOAD_SEED`] salted
    /// with the tenant id.
    pub fn workloads(&self, packet_budget: usize) -> Vec<TenantWorkload> {
        let sizes = self.mix.sizes();
        let weights = self.weights();
        let weight_total: usize = weights.iter().map(|&w| w as usize).sum();
        let unit = (packet_budget / weight_total).max(256);
        sizes
            .iter()
            .zip(&weights)
            .enumerate()
            .map(|(t, (&size, &weight))| {
                let name = format!("acl1_{size}#t{t}");
                let ruleset = pclass_classbench::ClassBenchGenerator::new(
                    SeedStyle::Acl,
                    crate::WORKLOAD_SEED ^ (0x7E57_0000 + t as u64),
                )
                .generate(size)
                .truncated(size, name.clone());
                let trace =
                    TraceGenerator::new(&ruleset, crate::WORKLOAD_SEED ^ (0xBEEF_0000 + t as u64))
                        .generate_named(unit * weight as usize, format!("{name}_trace"));
                TenantWorkload {
                    name,
                    ruleset,
                    trace,
                }
            })
            .collect()
    }
}

/// **The** tenant-cell matrix, the single declarative list both sweep
/// modes derive from (mirroring [`matrix`]).  Quick keeps the degenerate
/// 1-tenant cell (router = live-engine guard), the uniform 4-tenant cell,
/// the 16-tenant mixed-size acceptance cell, the churn+cache isolation
/// cell (tenant 0 churns mid-trace behind per-tenant caches, so both
/// churn isolation and generation-based cache invalidation are measured
/// on every PR), and the three policy cells: the **weighted** skew16
/// fairness cell (weight-4 big tenant, SLO-relative shares hard-checked),
/// the weighted **admission** cell (mid-trace evict/readmit while the
/// router serves, gated against the static phase), and the **sustained**
/// churn-under-load cell (a progress-paced update stream through
/// `live(t)` during measurement); the remaining mixes run weekly.
pub fn tenant_matrix() -> Vec<TenantScenario> {
    let steady = |mix, workers, quick| TenantScenario {
        mix,
        workers,
        churn: false,
        cache: false,
        weighted: false,
        admission: false,
        sustained: false,
        quick,
    };
    vec![
        steady(TenantMix::Uni1, 2, true),
        steady(TenantMix::Uni4, 4, true),
        steady(TenantMix::Skew4, 2, false),
        steady(TenantMix::Uni16, 4, false),
        steady(TenantMix::Skew16, 4, true),
        TenantScenario {
            churn: true,
            cache: true,
            ..steady(TenantMix::Uni4, 4, true)
        },
        TenantScenario {
            weighted: true,
            ..steady(TenantMix::Skew16, 4, true)
        },
        TenantScenario {
            weighted: true,
            admission: true,
            ..steady(TenantMix::Skew16, 4, true)
        },
        TenantScenario {
            sustained: true,
            ..steady(TenantMix::Uni4, 4, true)
        },
    ]
}

/// The tenant cells of one sweep mode (quick ⊆ full by construction, like
/// [`scenarios`]).
pub fn tenant_scenarios(quick: bool) -> Vec<TenantScenario> {
    tenant_matrix()
        .into_iter()
        .filter(|s| !quick || s.quick)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &Scenario) -> (String, usize, &'static str, Option<&'static str>, bool) {
        (
            s.style.name().to_string(),
            s.rules,
            s.trace.tag(),
            s.churn.map(|c| c.tag()),
            s.cache,
        )
    }

    #[test]
    fn quick_is_a_subset_of_full_and_ladders_nest() {
        let full = scenarios(false);
        for s in scenarios(true) {
            assert!(
                full.contains(&s),
                "quick cell {s:?} missing from the full matrix"
            );
        }
        for w in QUICK_WORKER_LADDER {
            assert!(
                FULL_WORKER_LADDER.contains(w),
                "quick worker count {w} missing from the full ladder"
            );
        }
        assert!(scenarios(true).len() < full.len());
    }

    #[test]
    fn matrix_has_no_duplicate_cells() {
        let cells = matrix();
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert_ne!(key(a), key(b), "duplicate scenario {a:?}");
            }
        }
    }

    #[test]
    fn quick_gates_every_promised_envelope_cell() {
        let quick = scenarios(true);
        let has = |f: &dyn Fn(&Scenario) -> bool| quick.iter().any(f);
        assert!(
            has(&|s| s.rules == 64_000 && s.churn.is_none()),
            "quick must include a 64k-rule cell"
        );
        assert!(
            has(&|s| s.trace == TraceProfile::Zipf),
            "quick must include a Zipf-skew cell"
        );
        assert!(has(&|s| s.churn == Some(ChurnProfile::Deep10)));
        assert!(has(&|s| s.churn == Some(ChurnProfile::DeleteHeavy)));
        assert!(has(&|s| s.churn == Some(ChurnProfile::Sustained)));
        assert!(has(&|s| s.churn == Some(ChurnProfile::Burst1)));
        // The hot-cache pair: the Zipf showcase cell and its uniform
        // control are both gated on every PR.
        assert!(
            has(&|s| s.cache && s.trace == TraceProfile::Zipf),
            "quick must include the zipf+cache cell"
        );
        assert!(
            has(&|s| s.cache && s.trace == TraceProfile::Uniform),
            "quick must include the uniform+cache control cell"
        );
        // Every cached cell has an uncached like-for-like twin in the full
        // matrix (same ruleset, trace and churn), so the ≥1.2x zipf
        // speed-up claim is always comparable.
        let full = scenarios(false);
        for cell in full.iter().filter(|s| s.cache) {
            assert!(
                full.iter().any(|s| !s.cache
                    && s.style == cell.style
                    && s.rules == cell.rules
                    && s.trace == cell.trace
                    && s.churn == cell.churn),
                "cached cell {cell:?} has no uncached twin"
            );
        }
    }

    #[test]
    fn every_quiescent_rung_of_the_generation_ladder_is_covered() {
        let full = scenarios(false);
        for style in [SeedStyle::Acl, SeedStyle::Fw, SeedStyle::Ipc] {
            for &rules in sweep_sizes(style) {
                assert!(
                    full.iter().any(|s| s.style == style
                        && s.rules == rules
                        && s.churn.is_none()
                        && s.trace == TraceProfile::Uniform),
                    "{style:?} {rules} missing from the full matrix"
                );
            }
        }
    }

    #[test]
    fn profile_tags_and_scopes_are_consistent() {
        let s = Scenario {
            style: SeedStyle::Acl,
            rules: 2_000,
            trace: TraceProfile::Zipf,
            churn: Some(ChurnProfile::Sustained),
            cache: false,
            quick: false,
        };
        assert_eq!(s.profile_tag(), "zipf+churn-sustained");
        assert_eq!(s.scope(), RosterScope::Full);
        let big = Scenario {
            rules: 64_000,
            trace: TraceProfile::Uniform,
            churn: None,
            ..s
        };
        assert_eq!(big.profile_tag(), "uniform");
        assert_eq!(big.scope(), RosterScope::Software);
        let cached = Scenario {
            trace: TraceProfile::Zipf,
            churn: None,
            cache: true,
            ..s
        };
        assert_eq!(cached.profile_tag(), "zipf+cache");
        // Tags are what the regression gate keys on: every distinct
        // (trace, churn) combination in the matrix has a distinct tag.
        let tags: std::collections::HashSet<String> =
            matrix().iter().map(|s| s.profile_tag()).collect();
        assert!(tags.len() >= 6, "expected a rich tag space, got {tags:?}");
    }

    #[test]
    fn tenant_quick_is_a_subset_and_gates_the_acceptance_cell() {
        let full = tenant_scenarios(false);
        for s in tenant_scenarios(true) {
            assert!(
                full.contains(&s),
                "quick tenant cell {s:?} missing from the full matrix"
            );
        }
        // One quiescent uncached unweighted cell per mix, plus the
        // churn+cache isolation cell and the three policy cells.
        assert_eq!(full.len(), TenantMix::ALL.len() + 4);
        assert_eq!(
            full.iter()
                .filter(|s| !s.churn && !s.cache && !s.weighted && !s.admission && !s.sustained)
                .count(),
            TenantMix::ALL.len()
        );
        // The 16-tenant mixed-size acceptance cell is CI-gated.
        assert!(
            tenant_scenarios(true)
                .iter()
                .any(|s| s.mix == TenantMix::Skew16 && s.workers > 1),
            "quick must include the skew16 acceptance cell"
        );
        // So is the churn+cache isolation cell — its tag carries the
        // `churn` token that selects the gate's wider tolerance.
        let isolation = tenant_scenarios(true)
            .into_iter()
            .find(|s| s.churn && s.cache)
            .expect("quick must include the churn+cache isolation cell");
        assert_eq!(isolation.profile_tag(), "uniform+tenants-uni4+churn+cache");
        assert!(isolation.profile_tag().contains("churn"));
        // The three policy cells are CI-gated too, with the promised tags.
        let quick = tenant_scenarios(true);
        let weighted = quick
            .iter()
            .find(|s| s.weighted && !s.admission)
            .expect("quick must include the weighted fairness cell");
        assert_eq!(weighted.mix, TenantMix::Skew16);
        assert_eq!(weighted.profile_tag(), "uniform+tenants-skew16+weighted");
        let admission = quick
            .iter()
            .find(|s| s.admission)
            .expect("quick must include the admission cell");
        assert!(admission.weighted, "admission runs under the weighted mix");
        assert_eq!(
            admission.profile_tag(),
            "uniform+tenants-skew16+weighted+admission"
        );
        let sustained = quick
            .iter()
            .find(|s| s.sustained)
            .expect("quick must include the sustained churn-under-load cell");
        assert!(
            !sustained.churn,
            "sustained replaces the between-pass burst"
        );
        assert_eq!(
            sustained.profile_tag(),
            "uniform+tenants-uni4+churn-sustained"
        );
        // Both churn-style tags carry the `churn` token the gate's wider
        // tolerance keys on.
        assert!(sustained.profile_tag().contains("churn"));
        // Tags are the gate's key: all distinct.
        let tags: std::collections::HashSet<String> =
            full.iter().map(|s| s.profile_tag()).collect();
        assert_eq!(tags.len(), full.len());
    }

    #[test]
    fn weighted_cells_offer_load_in_weight_proportion() {
        let cell = TenantScenario {
            mix: TenantMix::Skew16,
            workers: 4,
            churn: false,
            cache: false,
            weighted: true,
            admission: false,
            sustained: false,
            quick: true,
        };
        assert_eq!(cell.weights()[0], 4);
        assert!(cell.weights()[1..].iter().all(|&w| w == 1));
        let workloads = cell.workloads(4_000);
        // Σ weights = 19, budget 4 000 → unit 256 (the floor): the big
        // tenant offers 4 units, every small tenant 1.
        assert_eq!(workloads[0].trace.len(), 4 * 256);
        assert!(workloads[1..].iter().all(|w| w.trace.len() == 256));
        // The unweighted twin stays evenly split.
        let unweighted = TenantScenario {
            weighted: false,
            ..cell
        };
        assert!(unweighted.weights().iter().all(|&w| w == 1));
        assert!(unweighted
            .workloads(4_000)
            .iter()
            .all(|w| w.trace.len() == 256));
        // Uniform mixes have no weighted variant distinct from all-1.
        assert!(TenantMix::Uni4.weights().iter().all(|&w| w == 1));
        assert_eq!(TenantMix::Skew4.weights(), vec![4, 1, 1, 1]);
    }

    #[test]
    fn tenant_workloads_are_deterministic_isolated_and_sized() {
        let cell = TenantScenario {
            mix: TenantMix::Skew16,
            workers: 4,
            churn: false,
            cache: false,
            weighted: false,
            admission: false,
            sustained: false,
            quick: true,
        };
        let workloads = cell.workloads(4_000);
        assert_eq!(workloads.len(), 16);
        assert_eq!(workloads[0].ruleset.len(), 10_000);
        for w in &workloads[1..] {
            assert_eq!(w.ruleset.len(), 500);
        }
        // Every tenant gets the floor when the budget splits thin.
        assert!(workloads.iter().all(|w| w.trace.len() == 256));
        // Tenants draw from distinct seeds: no two share a ruleset.
        assert_ne!(workloads[1].ruleset.rules(), workloads[2].ruleset.rules());
        // Deterministic run to run.
        let again = cell.workloads(4_000);
        assert_eq!(workloads[3].trace, again[3].trace);
        assert_eq!(workloads[3].name, "acl1_500#t3");
        assert_eq!(cell.profile_tag(), "uniform+tenants-skew16");
        assert_eq!(cell.mix.mix_name(), "acl1_10000+15x500");
        assert_eq!(cell.mix.tenants(), 16);
    }

    #[test]
    fn zipf_trace_profile_is_deterministic_and_distinct_from_uniform() {
        let rs = crate::acl_ruleset(300);
        let a = TraceProfile::Zipf.trace(&rs, 800);
        assert_eq!(a, TraceProfile::Zipf.trace(&rs, 800));
        assert_eq!(a.name(), "acl1_300_zipf_trace");
        assert_ne!(a, TraceProfile::Uniform.trace(&rs, 800));
    }
}
