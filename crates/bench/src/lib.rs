//! Shared workload construction and measurement helpers for the benchmark
//! harness (`reproduce` and `throughput` binaries and the criterion
//! benches).
//!
//! Every table and figure of the paper's evaluation section is regenerated
//! from these building blocks; see `EXPERIMENTS.md` at the workspace root
//! for the experiment-by-experiment mapping and the recorded outputs.  On
//! top of the paper reproduction the crate carries the serving-throughput
//! measurement stack:
//!
//! * [`serving_roster`] / [`serving_roster_lanes`] /
//!   [`serving_roster_config`] — the single source of truth for which
//!   classifiers serve a ruleset (and at which flat-arena [`LaneWidth`]),
//!   with explicit skip records for builds that cannot; the registration
//!   list itself is the typed [`roster_entries`] table.
//! * [`scenario`] — the declarative scenario matrix: ruleset style × size
//!   × trace profile × churn profile × worker count, with `quick` tags so
//!   CI and the weekly full sweep can never drift apart.
//! * [`churn`] — deterministic live-update streams (burst, deep,
//!   delete-heavy, sustained) and the serve-under-churn measurement loop.
//! * [`check`] — the calibrated throughput-regression gate behind
//!   `throughput --check` (see `docs/SCHEMA.md` for the file format and
//!   the exact pass/fail rules).

//!
//! # Example
//!
//! Build the software serving roster for a small ACL set — the same
//! roster the `throughput` binary, the engine equivalence tests and the
//! examples all share:
//!
//! ```
//! use pclass_algos::LaneWidth;
//! use pclass_bench::{acl_ruleset, serving_roster_lanes, RosterScope};
//!
//! let rs = acl_ruleset(150);
//! let roster = serving_roster_lanes(&rs, RosterScope::Software, LaneWidth::X8);
//! let names: Vec<&str> = roster.classifiers.iter().map(|(n, _)| *n).collect();
//! assert_eq!(
//!     names,
//!     ["linear", "hicuts", "hicuts-flat", "hypercuts", "hypercuts-flat"]
//! );
//! // Out-of-scope classifiers are explicit skips, never silent gaps.
//! assert!(roster.skipped.iter().any(|s| s.classifier == "rfc"));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod churn;
pub mod scenario;

use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
use pclass_algos::hypercuts::{HyperCutsClassifier, HyperCutsConfig};
use pclass_algos::{
    Classifier, FlatSettings, LaneWidth, LinearClassifier, LookupStats, OpCounters, RfcClassifier,
};
use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
use pclass_core::builder::HwTree;
use pclass_core::builder::{BuildConfig, CutAlgorithm, SpeedMode};
use pclass_core::hw::{Accelerator, AcceleratorClassifier, ClassificationReport};
use pclass_core::program::{HardwareProgram, ProgramStats};
use pclass_energy::sa1100::Sa1100Model;
use pclass_engine::{EngineConfig, SharedClassifier, TenantSpec};
use pclass_tcam::TcamClassifier;
use pclass_types::{ArenaStats, RuleSet, Trace};
use std::sync::Arc;

/// Deterministic seed used for every generated workload so tables are
/// reproducible run to run.
pub const WORKLOAD_SEED: u64 = 20080414; // IPDPS 2008 week

/// The ruleset sizes of the acl1 column used by Tables 2, 3, 6, 7 and 8.
pub const ACL_TABLE_SIZES: [usize; 6] = pclass_classbench::PAPER_ACL_SIZES;

/// Builds the ACL-style ruleset of a given size used by the acl1-based
/// tables (generated once at the largest size and truncated, the way the
/// paper's acl1 subsets nest).
pub fn acl_ruleset(size: usize) -> RuleSet {
    let full = ClassBenchGenerator::new(SeedStyle::Acl, WORKLOAD_SEED).generate(2_191.max(size));
    full.truncated(size, format!("acl1_{size}"))
}

/// Builds a ruleset of the given style and size (used by Table 4).
pub fn styled_ruleset(style: SeedStyle, size: usize) -> RuleSet {
    ClassBenchGenerator::new(style, WORKLOAD_SEED).generate(size)
}

/// Builds the packet trace used with a ruleset.
pub fn trace_for(ruleset: &RuleSet, packets: usize) -> Trace {
    TraceGenerator::new(ruleset, WORKLOAD_SEED ^ 0xF00D).generate(packets)
}

/// Result of measuring one software classifier over a trace.
#[derive(Debug, Clone)]
pub struct SoftwareMeasurement {
    /// Algorithm name.
    pub name: &'static str,
    /// Memory occupied by its search structure plus the ruleset (bytes).
    pub memory_bytes: usize,
    /// Average operation mix per packet.
    pub avg_ops: OpCounters,
    /// Energy per packet on the SA-1100 model (normalised, joules).
    pub energy_per_packet_j: f64,
    /// Packets per second on the SA-1100 model.
    pub packets_per_second: f64,
    /// Worst-case memory accesses of a lookup.
    pub worst_case_accesses: u64,
}

/// Measures a software classifier over a trace with the SA-1100 model.
pub fn measure_software(classifier: &dyn Classifier, trace: &Trace) -> SoftwareMeasurement {
    let model = Sa1100Model::new();
    let mut total = LookupStats::new();
    for entry in trace.entries() {
        classifier.classify_with_stats(&entry.header, &mut total);
    }
    let n = trace.len().max(1) as u64;
    let avg_ops = OpCounters {
        loads: total.ops.loads / n,
        stores: total.ops.stores / n,
        alu: total.ops.alu / n,
        branches: total.ops.branches / n,
        muls: total.ops.muls / n,
        divs: total.ops.divs / n,
    };
    SoftwareMeasurement {
        name: classifier.name(),
        memory_bytes: classifier.memory_bytes(),
        avg_ops,
        energy_per_packet_j: model.normalized_energy_j(&avg_ops),
        packets_per_second: model.packets_per_second(&avg_ops),
        worst_case_accesses: classifier.worst_case_memory_accesses().unwrap_or(0),
    }
}

/// Result of measuring the hardware accelerator over a trace.
#[derive(Debug, Clone)]
pub struct HardwareMeasurement {
    /// Cut algorithm used to build the structure.
    pub algorithm: CutAlgorithm,
    /// Layout statistics of the program.
    pub stats: ProgramStats,
    /// Trace replay report.
    pub report: ClassificationReport,
}

/// Builds the hardware program (12-bit address space) and replays the trace.
pub fn measure_hardware(
    ruleset: &RuleSet,
    trace: &Trace,
    algorithm: CutAlgorithm,
) -> Option<HardwareMeasurement> {
    let config = BuildConfig::paper_defaults(algorithm);
    let program = HardwareProgram::build_with_capacity(ruleset, &config, 4096).ok()?;
    let report = Accelerator::new(&program).classify_trace(trace);
    Some(HardwareMeasurement {
        algorithm,
        stats: *program.stats(),
        report,
    })
}

/// Plans the hardware layout even when it exceeds the addressable capacity
/// (used by Table 4 for the largest fw1-style sets).
pub fn plan_hardware(
    ruleset: &RuleSet,
    algorithm: CutAlgorithm,
) -> Option<(ProgramStats, pclass_algos::BuildStats)> {
    let config = BuildConfig::paper_defaults(algorithm);
    let tree = HwTree::build(ruleset, &config).ok()?;
    let build = tree.build_stats;
    Some((
        HardwareProgram::plan_layout(&tree, SpeedMode::Throughput),
        build,
    ))
}

/// A classifier that could not be built for a ruleset, with the reason —
/// RFC can exceed its memory budget and the accelerator its address space
/// on the largest sets.
#[derive(Debug, Clone)]
pub struct RosterSkip {
    /// Classifier name as it would have appeared in the roster.
    pub classifier: &'static str,
    /// Human-readable build-failure reason.
    pub reason: String,
}

/// Footprint of one successful classifier build in the roster.
#[derive(Debug, Clone)]
pub struct RosterBuild {
    /// Classifier name (matches the roster entry).
    pub classifier: &'static str,
    /// Bytes reported by [`Classifier::memory_bytes`] (the software memory
    /// model for the pointer structures, actual in-memory bytes for the
    /// flat arenas).
    pub memory_bytes: usize,
    /// Arena layout statistics for the flat decision-tree variants.
    pub arena: Option<ArenaStats>,
}

/// The full serving roster for one ruleset: every classifier in the
/// workspace that can serve it, plus explicit skips for the ones that
/// cannot.
pub struct ClassifierRoster {
    /// `(name, classifier)` pairs, in the fixed roster order: linear,
    /// hicuts, hicuts-flat, hypercuts, hypercuts-flat, rfc, tcam,
    /// hw-hicuts, hw-hypercuts.
    pub classifiers: Vec<(&'static str, SharedClassifier)>,
    /// Classifiers whose build failed on this ruleset.
    pub skipped: Vec<RosterSkip>,
    /// Per-build memory footprint of every successful entry, in roster
    /// order (recorded in `BENCH_throughput.json`'s `builds` array).
    pub builds: Vec<RosterBuild>,
}

/// Which classifiers a scenario cell builds and serves.
///
/// The hardware accelerator model (4096-word address space), the
/// functional TCAM (range expansion, linear match) and RFC (cross-product
/// phase tables) are infeasible far below the top of the extended ruleset
/// ladder — and, worse, discovering that is itself expensive: the
/// accelerator builds its full decision tree before the layout fails, and
/// RFC's memory-budget estimate only bounds the *final* table, so at 32 k
/// rules the check passes while the cross-producting runs for tens of
/// minutes.  The scenario matrix therefore excludes them *a priori* on the
/// ≥32 k-rule cells, recorded as explicit skips so the gap in the
/// trajectory stays visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RosterScope {
    /// Every classifier in the workspace (build failures become skips).
    Full,
    /// Scalable software classifiers only: linear, the pointer trees and
    /// the flat arenas; RFC, TCAM and the accelerator models are recorded
    /// as explicit skips.
    Software,
}

/// Shared state threaded through every [`RosterEntry`] build hook.
///
/// Memoizes the HiCuts/HyperCuts pointer trees so the pointer entry and
/// its flat-arena sibling share one build (the arena is flattened *from*
/// the pointer tree; rebuilding the tree per entry would double the most
/// expensive part of roster construction on the 64 k cells), and carries
/// the flat-arena [`LaneWidth`] requested by the caller.
pub struct RosterCtx<'a> {
    ruleset: &'a RuleSet,
    lanes: LaneWidth,
    hicuts: Option<Arc<HiCutsClassifier>>,
    hypercuts: Option<Arc<HyperCutsClassifier>>,
}

impl<'a> RosterCtx<'a> {
    fn new(ruleset: &'a RuleSet, lanes: LaneWidth) -> RosterCtx<'a> {
        RosterCtx {
            ruleset,
            lanes,
            hicuts: None,
            hypercuts: None,
        }
    }

    /// The ruleset the roster is being built for.
    pub fn ruleset(&self) -> &RuleSet {
        self.ruleset
    }

    /// Flat-arena settings with the caller's lane width (the other knobs
    /// stay at their defaults).
    pub fn flat_settings(&self) -> FlatSettings {
        FlatSettings {
            lanes: self.lanes,
            ..FlatSettings::default()
        }
    }

    /// The HiCuts pointer tree, built on first use and shared afterwards.
    pub fn hicuts(&mut self) -> Arc<HiCutsClassifier> {
        Arc::clone(self.hicuts.get_or_insert_with(|| {
            Arc::new(HiCutsClassifier::build(
                self.ruleset,
                &HiCutsConfig::paper_defaults(),
            ))
        }))
    }

    /// The HyperCuts pointer tree, built on first use and shared afterwards.
    pub fn hypercuts(&mut self) -> Arc<HyperCutsClassifier> {
        Arc::clone(self.hypercuts.get_or_insert_with(|| {
            Arc::new(HyperCutsClassifier::build(
                self.ruleset,
                &HyperCutsConfig::paper_defaults(),
            ))
        }))
    }
}

/// What one build hook returns: the classifier behind a shared handle,
/// plus arena layout statistics for the flat decision-tree variants.
pub type RosterBuildResult = Result<(SharedClassifier, Option<ArenaStats>), String>;

/// One registered classifier in the serving roster.
///
/// The roster used to be assembled by a single function with name-matched
/// special cases (which classifiers the `Software` scope skips, which
/// entries carry arena stats); each entry now declares its own scope and
/// skip reason, so adding a classifier to the workspace means adding one
/// entry to [`roster_entries`] — no string matching anywhere.
pub struct RosterEntry {
    /// Roster name; matches [`Classifier::name`], so run and skip records
    /// in `BENCH_throughput.json` always correlate.
    pub name: &'static str,
    /// The narrowest [`RosterScope`] that includes this entry:
    /// [`RosterScope::Software`] entries serve in every scope,
    /// [`RosterScope::Full`] entries only when the full roster is asked
    /// for.
    pub scope: RosterScope,
    /// Builds the classifier; a build failure (`Err`) becomes an explicit
    /// [`RosterSkip`], never a silent gap.
    pub build: fn(&mut RosterCtx) -> RosterBuildResult,
    /// For [`RosterScope::Full`] entries: the reason recorded when a
    /// narrower scope excludes the entry *a priori* (without attempting
    /// the build).  `None` for entries that serve in every scope.
    pub scope_skip: Option<fn(&RuleSet) -> String>,
    /// Starts the [`TenantSpec`] used when this classifier serves a
    /// tenant of a `TenantRouter` cell — the tenant matrix and the
    /// serving roster share one declaration style, so a classifier with
    /// special tenant policy (a tighter memory budget, a different cache
    /// share) declares it here instead of inside the harness.
    pub spec: fn(String) -> TenantSpec,
}

/// The default [`RosterEntry::spec`] hook: a plain spec with the builder
/// defaults (weight 1, no memory budget, cache share = weight).
pub fn default_tenant_spec(name: String) -> TenantSpec {
    TenantSpec::new(name)
}

fn build_linear(ctx: &mut RosterCtx) -> RosterBuildResult {
    Ok((Arc::new(LinearClassifier::new(ctx.ruleset().clone())), None))
}

fn build_hicuts(ctx: &mut RosterCtx) -> RosterBuildResult {
    Ok((ctx.hicuts(), None))
}

fn build_hicuts_flat(ctx: &mut RosterCtx) -> RosterBuildResult {
    // The flat variant shares nothing with its pointer tree at serve
    // time: the arena is a deep re-packing, so both layouts can be
    // measured side by side.
    let flat = ctx.hicuts().flatten().with_settings(ctx.flat_settings());
    let arena = flat.arena_stats();
    Ok((Arc::new(flat), Some(arena)))
}

fn build_hypercuts(ctx: &mut RosterCtx) -> RosterBuildResult {
    Ok((ctx.hypercuts(), None))
}

fn build_hypercuts_flat(ctx: &mut RosterCtx) -> RosterBuildResult {
    let flat = ctx.hypercuts().flatten().with_settings(ctx.flat_settings());
    let arena = flat.arena_stats();
    Ok((Arc::new(flat), Some(arena)))
}

fn build_rfc(ctx: &mut RosterCtx) -> RosterBuildResult {
    RfcClassifier::build(ctx.ruleset())
        .map(|rfc| (Arc::new(rfc) as SharedClassifier, None))
        .map_err(|e| e.to_string())
}

fn build_tcam(ctx: &mut RosterCtx) -> RosterBuildResult {
    TcamClassifier::program(ctx.ruleset())
        .map(|tcam| (Arc::new(tcam) as SharedClassifier, None))
        .map_err(|e| e.to_string())
}

fn build_hw(ctx: &mut RosterCtx, algorithm: CutAlgorithm) -> RosterBuildResult {
    let config = BuildConfig::paper_defaults(algorithm);
    HardwareProgram::build_with_capacity(ctx.ruleset(), &config, 4096)
        .map(|program| {
            (
                Arc::new(AcceleratorClassifier::new(program)) as SharedClassifier,
                None,
            )
        })
        .map_err(|e| e.to_string())
}

fn build_hw_hicuts(ctx: &mut RosterCtx) -> RosterBuildResult {
    build_hw(ctx, CutAlgorithm::HiCuts)
}

fn build_hw_hypercuts(ctx: &mut RosterCtx) -> RosterBuildResult {
    build_hw(ctx, CutAlgorithm::HyperCuts)
}

// RFC's memory-budget estimate only bounds the *final* table; at 32 k
// rules the estimate passes but the phase cross-producting itself runs
// for tens of minutes, so past the 10 k wall RFC is excluded a priori
// like the hardware models rather than discovered-by-stall.
fn rfc_scope_skip(ruleset: &RuleSet) -> String {
    format!(
        "excluded by the scenario matrix at {} rules (phase-table \
         cross-producting is unbounded in time past the 10k wall \
         even when the final table fits the memory budget)",
        ruleset.len()
    )
}

fn hardware_scope_skip(ruleset: &RuleSet) -> String {
    format!(
        "excluded by the scenario matrix at {} rules (hardware model \
         address space and TCAM range expansion are infeasible at \
         this size)",
        ruleset.len()
    )
}

/// The registration list behind [`serving_roster`]: every classifier in
/// the workspace, in the fixed roster order.  Adding a classifier to the
/// workspace means adding exactly one entry here.
pub fn roster_entries() -> [RosterEntry; 9] {
    [
        RosterEntry {
            name: "linear",
            scope: RosterScope::Software,
            build: build_linear,
            scope_skip: None,
            spec: default_tenant_spec,
        },
        RosterEntry {
            name: "hicuts",
            scope: RosterScope::Software,
            build: build_hicuts,
            scope_skip: None,
            spec: default_tenant_spec,
        },
        RosterEntry {
            name: "hicuts-flat",
            scope: RosterScope::Software,
            build: build_hicuts_flat,
            scope_skip: None,
            spec: default_tenant_spec,
        },
        RosterEntry {
            name: "hypercuts",
            scope: RosterScope::Software,
            build: build_hypercuts,
            scope_skip: None,
            spec: default_tenant_spec,
        },
        RosterEntry {
            name: "hypercuts-flat",
            scope: RosterScope::Software,
            build: build_hypercuts_flat,
            scope_skip: None,
            spec: default_tenant_spec,
        },
        RosterEntry {
            name: "rfc",
            scope: RosterScope::Full,
            build: build_rfc,
            scope_skip: Some(rfc_scope_skip),
            spec: default_tenant_spec,
        },
        RosterEntry {
            name: "tcam",
            scope: RosterScope::Full,
            build: build_tcam,
            scope_skip: Some(hardware_scope_skip),
            spec: default_tenant_spec,
        },
        RosterEntry {
            name: "hw-hicuts",
            scope: RosterScope::Full,
            build: build_hw_hicuts,
            scope_skip: Some(hardware_scope_skip),
            spec: default_tenant_spec,
        },
        RosterEntry {
            name: "hw-hypercuts",
            scope: RosterScope::Full,
            build: build_hw_hypercuts,
            scope_skip: Some(hardware_scope_skip),
            spec: default_tenant_spec,
        },
    ]
}

/// Builds every classifier in the workspace for a ruleset, behind shared
/// handles the `pclass-engine` serving layer can fan out across workers.
///
/// This is the single source of truth for the serving roster — the
/// `throughput` binary, the engine equivalence tests and the
/// `serving_throughput` example all use it; the registration list itself
/// is [`roster_entries`].
pub fn serving_roster(ruleset: &RuleSet) -> ClassifierRoster {
    serving_roster_scoped(ruleset, RosterScope::Full)
}

/// [`serving_roster`] restricted to a [`RosterScope`] — the scenario matrix
/// uses [`RosterScope::Software`] for its ≥32 k-rule cells.
pub fn serving_roster_scoped(ruleset: &RuleSet, scope: RosterScope) -> ClassifierRoster {
    serving_roster_lanes(ruleset, scope, LaneWidth::default())
}

/// [`serving_roster_scoped`] driven by an [`EngineConfig`]: the roster's
/// flat-arena lane width comes from [`EngineConfig::lanes`], so one
/// builder value plumbs from a CLI flag through roster construction and
/// engine construction alike.
pub fn serving_roster_config(
    ruleset: &RuleSet,
    scope: RosterScope,
    config: &EngineConfig,
) -> ClassifierRoster {
    serving_roster_lanes(ruleset, scope, config.lanes())
}

/// [`serving_roster_scoped`] with an explicit [`LaneWidth`] for the flat
/// arena walk.  The `throughput` binary's `--lane-width` flag routes here,
/// so the batched vector walk and the scalar fallback
/// ([`LaneWidth::Scalar`]) can be A/B-measured through the same engine
/// path; every other classifier in the roster ignores the setting.
pub fn serving_roster_lanes(
    ruleset: &RuleSet,
    scope: RosterScope,
    lanes: LaneWidth,
) -> ClassifierRoster {
    let mut ctx = RosterCtx::new(ruleset, lanes);
    let mut classifiers: Vec<(&'static str, SharedClassifier)> = Vec::new();
    let mut skipped = Vec::new();
    let mut builds = Vec::new();
    for entry in roster_entries() {
        if scope == RosterScope::Software && entry.scope == RosterScope::Full {
            let skip = entry
                .scope_skip
                .expect("Full-scope roster entries must declare a scope-skip reason");
            skipped.push(RosterSkip {
                classifier: entry.name,
                reason: skip(ruleset),
            });
            continue;
        }
        match (entry.build)(&mut ctx) {
            Ok((classifier, arena)) => {
                builds.push(RosterBuild {
                    classifier: entry.name,
                    memory_bytes: classifier.memory_bytes(),
                    arena,
                });
                classifiers.push((entry.name, classifier));
            }
            Err(reason) => skipped.push(RosterSkip {
                classifier: entry.name,
                reason,
            }),
        }
    }
    ClassifierRoster {
        classifiers,
        skipped,
        builds,
    }
}

/// Builds the original (software) HiCuts classifier with paper parameters.
pub fn software_hicuts(ruleset: &RuleSet) -> HiCutsClassifier {
    HiCutsClassifier::build(ruleset, &HiCutsConfig::paper_defaults())
}

/// Builds the original (software) HyperCuts classifier with paper parameters.
pub fn software_hypercuts(ruleset: &RuleSet) -> HyperCutsClassifier {
    HyperCutsClassifier::build(ruleset, &HyperCutsConfig::paper_defaults())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acl_rulesets_nest() {
        let small = acl_ruleset(60);
        let large = acl_ruleset(150);
        assert_eq!(small.len(), 60);
        assert_eq!(large.len(), 150);
        for (a, b) in small.rules().iter().zip(large.rules()) {
            assert_eq!(a.ranges, b.ranges);
        }
    }

    #[test]
    fn serving_roster_covers_every_classifier_on_small_sets() {
        let rs = acl_ruleset(150);
        let roster = serving_roster(&rs);
        let names: Vec<&str> = roster.classifiers.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "linear",
                "hicuts",
                "hicuts-flat",
                "hypercuts",
                "hypercuts-flat",
                "rfc",
                "tcam",
                "hw-hicuts",
                "hw-hypercuts"
            ]
        );
        assert!(roster.skipped.is_empty(), "{:?}", roster.skipped);
        // Roster names match what the classifiers report about themselves,
        // so run records and skip records in BENCH_throughput.json always
        // correlate.
        for (name, classifier) in &roster.classifiers {
            assert_eq!(*name, classifier.name());
        }
        // One build record per entry, arena stats only on the flat variants.
        assert_eq!(roster.builds.len(), roster.classifiers.len());
        for build in &roster.builds {
            assert!(build.memory_bytes > 0, "{}", build.classifier);
            assert_eq!(
                build.arena.is_some(),
                build.classifier.ends_with("-flat"),
                "{}",
                build.classifier
            );
        }
    }

    #[test]
    fn software_scope_excludes_hardware_models_with_explicit_skips() {
        let rs = acl_ruleset(150);
        let roster = serving_roster_scoped(&rs, RosterScope::Software);
        let names: Vec<&str> = roster.classifiers.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "linear",
                "hicuts",
                "hicuts-flat",
                "hypercuts",
                "hypercuts-flat"
            ]
        );
        let skipped: Vec<&str> = roster.skipped.iter().map(|s| s.classifier).collect();
        assert_eq!(skipped, ["rfc", "tcam", "hw-hicuts", "hw-hypercuts"]);
        for skip in &roster.skipped {
            assert!(
                skip.reason.contains("scenario matrix"),
                "skip reason must say why: {}",
                skip.reason
            );
        }
        assert_eq!(roster.builds.len(), roster.classifiers.len());
    }

    #[test]
    fn roster_entries_declare_consistent_scopes_and_unique_names() {
        let entries = roster_entries();
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "duplicate roster entry name");
        for entry in &entries {
            // Entries outside the Software scope must explain their
            // exclusion; always-on entries must not carry a stale reason.
            assert_eq!(
                entry.scope_skip.is_some(),
                entry.scope == RosterScope::Full,
                "{}: scope_skip must be present iff scope is Full",
                entry.name
            );
            if let Some(skip) = entry.scope_skip {
                assert!(
                    skip(&acl_ruleset(60)).contains("scenario matrix"),
                    "{}: skip reason must say why",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn roster_entries_start_tenant_specs_named_after_the_tenant() {
        for entry in roster_entries() {
            let spec = (entry.spec)(format!("{}_t0", entry.name));
            assert_eq!(spec.name(), format!("{}_t0", entry.name));
            // Every current entry uses the builder defaults; an entry
            // that tightens its policy changes this hook, not the
            // harness.
            assert_eq!(spec.weight_value(), 1);
            assert_eq!(spec.cache_share_value(), 1);
            assert!(spec.memory_budget_bytes().is_none());
        }
    }

    #[test]
    fn roster_config_lane_width_reaches_the_flat_arenas() {
        let rs = acl_ruleset(120);
        let config = EngineConfig::new().lane_width(LaneWidth::Scalar);
        let roster = serving_roster_config(&rs, RosterScope::Software, &config);
        // Same entries as the default-lane roster; the lane width only
        // changes the flat arenas' walk, which their settings expose.
        let names: Vec<&str> = roster.classifiers.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"hicuts-flat"));
        let default_roster = serving_roster_scoped(&rs, RosterScope::Software);
        assert_eq!(
            names,
            default_roster
                .classifiers
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn measurement_helpers_produce_sane_numbers() {
        let rs = acl_ruleset(150);
        let trace = trace_for(&rs, 500);
        let sw = measure_software(&software_hicuts(&rs), &trace);
        assert!(sw.energy_per_packet_j > 0.0);
        assert!(sw.packets_per_second > 1_000.0);
        let hw = measure_hardware(&rs, &trace, CutAlgorithm::HyperCuts).expect("fits");
        assert!(hw.stats.memory_bytes > 0);
        assert_eq!(hw.report.packets(), 500);
        let planned = plan_hardware(&rs, CutAlgorithm::HyperCuts).expect("plans");
        assert_eq!(planned.0.total_words, hw.stats.total_words);
    }
}
