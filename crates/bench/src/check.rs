//! The throughput-regression comparison behind `throughput --check`.
//!
//! Pure data-in/data-out so the gate CI relies on is unit-testable: the
//! binary parses flags, runs the sweep and prints; everything that decides
//! *pass or fail* lives here.
//!
//! Comparison model (see the README's "Regression gate" section): cells are
//! matched by `(classifier, ruleset, tenants, workers, profile)` — the
//! profile tag carries the trace profile (`uniform` / `zipf`), the churn
//! profile for live-update cells (`uniform+churn-deep10`, ...), and the
//! tenant mix for multi-tenant cells (`uniform+tenants-skew16`, ...), so
//! churn, skew and tenant cells are only ever compared like-for-like,
//! never against a quiescent single-tenant cell.  The median new/baseline
//! ratio, capped at 1, calibrates for host speed; a cell regresses when it
//! falls more than the tolerance below its calibrated expectation.
//! Tolerances are profile-aware: multi-worker cells — which fold in core
//! count and scheduler placement — get a tolerance a quarter of the way to
//! 1 (now that CI compares the quick sweep against a committed quick-mode
//! baseline, like for like, the old halfway widening is unnecessarily
//! loose), and churn and tenant cells — whose throughput additionally
//! folds in update pacing / writer contention / cross-tenant grouping —
//! get one half of the way to 1.  A classifier present in the baseline but
//! absent from the fresh sweep fails the check outright, and so does any
//! *individual* baseline cell with no fresh partner — the measured
//! envelope (scenarios, churn profiles, tenant mixes, worker ladder) must
//! never shrink silently (dropping `--tenants` orphans every committed
//! tenant cell, exactly like dropping `--churn` orphans the churn cells).
//!
//! Baselines additionally carry the recording host's metadata (logical CPU
//! count, rustc version).  A mismatch against the comparing host does not
//! fail the gate — the calibration exists precisely to absorb host speed —
//! but it is surfaced via [`host_mismatch`] so a cross-host comparison is
//! flagged instead of silently leaning on the widened tolerance.

use serde::json::Value;
use serde::Serialize;

/// The profile tag of cells recorded before schema v4 (quiescent cells on
/// the default trace).
pub const DEFAULT_PROFILE: &str = "uniform";

/// One comparable `(classifier, ruleset, tenants, workers, profile)`
/// measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCell {
    /// Classifier roster name.
    pub classifier: String,
    /// Ruleset name (e.g. `acl1_2000`), or the ruleset-mix name for
    /// tenant cells (e.g. `acl1_10000+15x500`).
    pub ruleset: String,
    /// Tenant count: 0 for single-tenant cells (`runs` / `churn`
    /// records), the router's tenant count for v5 `tenants` records.
    pub tenants: u64,
    /// Engine worker count.
    pub workers: u64,
    /// Scenario profile tag: the trace profile for quiescent cells
    /// (`uniform` / `zipf`), `<trace>+churn-<profile>` for live-update
    /// cells, `<trace>+tenants-<mix>` for multi-tenant cells.  Cells only
    /// compare against cells with the same tag.
    pub profile: String,
    /// Measured throughput.
    pub mpps: f64,
}

impl RunCell {
    /// `true` for live-update cells (wider tolerance: their throughput
    /// folds in update pacing and writer contention on top of scheduler
    /// placement).
    pub fn is_churn(&self) -> bool {
        self.profile.contains("churn")
    }

    /// `true` for multi-tenant cells (wider tolerance: their throughput
    /// folds in cross-tenant grouping and per-tenant snapshot traffic on
    /// top of scheduler placement).
    pub fn is_tenant(&self) -> bool {
        self.tenants > 0
    }
}

/// Why a check could not produce a verdict (distinct from a regression).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The baseline shares no `(classifier, ruleset, workers)` cells with
    /// the fresh run — wrong file, or an incompatible schema.
    NoComparableCells,
}

/// The verdict for one compared cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellVerdict {
    /// The fresh measurement.
    pub cell: RunCell,
    /// The baseline throughput for the same cell.
    pub base_mpps: f64,
    /// Speed relative to the calibrated expectation (1.0 = exactly as the
    /// baseline predicts on this host).
    pub rel: f64,
    /// Whether the cell fails the gate.
    pub regressed: bool,
}

/// Outcome of a full comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Median new/baseline ratio over the compared cells.
    pub median_ratio: f64,
    /// The applied machine-speed factor (`median_ratio` capped at 1).
    pub calibration: f64,
    /// Baseline classifiers with no cell at all in the fresh run; a
    /// non-empty list fails the check (a vanished build must not pass
    /// silently).
    pub missing_classifiers: Vec<String>,
    /// Baseline cells with no `(classifier, ruleset, tenants, workers,
    /// profile)` partner in the fresh run; a non-empty list fails the
    /// check — the measured envelope must not shrink silently (e.g. CI
    /// dropping `--churn` or `--tenants` would orphan every committed
    /// churn/tenant cell, or removing a scenario from the matrix would
    /// orphan its cells).
    pub missing_cells: Vec<RunCell>,
    /// Per-cell verdicts, in fresh-run order.
    pub cells: Vec<CellVerdict>,
}

impl CheckReport {
    /// Number of regressed cells.
    pub fn regressions(&self) -> usize {
        self.cells.iter().filter(|c| c.regressed).count()
    }

    /// `true` when the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
            && self.missing_classifiers.is_empty()
            && self.missing_cells.is_empty()
    }
}

/// Host metadata recorded in a throughput file's header (schema v3+), so
/// `check` can tell a same-host comparison from a cross-host one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HostInfo {
    /// Logical CPU count of the recording host (0 when undetectable).
    pub logical_cpus: u64,
    /// `rustc --version` of the recording toolchain (`"unknown"` when the
    /// compiler is not on the PATH at measurement time).
    pub rustc: String,
}

impl HostInfo {
    /// Probes the current host.
    pub fn current() -> HostInfo {
        let logical_cpus = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(0);
        let rustc = std::process::Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
        HostInfo {
            logical_cpus,
            rustc,
        }
    }
}

/// Extracts the host metadata of a parsed throughput file, when present
/// (files before schema v3 have none).
pub fn baseline_host(baseline: &Value) -> Option<HostInfo> {
    let host = baseline.get("host")?;
    Some(HostInfo {
        logical_cpus: host.get("logical_cpus")?.as_u64()?,
        rustc: host.get("rustc")?.as_str()?.to_string(),
    })
}

/// Describes how the comparing host differs from the baseline's recording
/// host, or `None` when they match (or the baseline predates host
/// metadata).  The caller prints this as a warning — it never fails the
/// gate by itself.
pub fn host_mismatch(baseline: Option<&HostInfo>, current: &HostInfo) -> Option<String> {
    let base = baseline?;
    let mut notes = Vec::new();
    if base.logical_cpus != current.logical_cpus {
        notes.push(format!(
            "logical CPUs {} vs baseline {} (multi-worker cells scale differently)",
            current.logical_cpus, base.logical_cpus
        ));
    }
    if base.rustc != current.rustc {
        notes.push(format!(
            "rustc {:?} vs baseline {:?} (codegen differences shift per-cell speed)",
            current.rustc, base.rustc
        ));
    }
    if notes.is_empty() {
        None
    } else {
        Some(format!("cross-host comparison: {}", notes.join("; ")))
    }
}

/// Extracts the comparable cells of a parsed throughput file (any schema
/// version; records missing a required field are skipped).  Quiescent
/// `runs` records yield their `profile` tag (pre-v4 files default to
/// [`DEFAULT_PROFILE`]); v4 `churn` records yield cells tagged with their
/// own profile and measured as `mpps_under_churn`, so the live-update
/// envelope is regression-gated like-for-like too (pre-v4 churn records
/// lack a worker count and are skipped); v5 `tenants` records yield cells
/// carrying their tenant count, keyed by the ruleset-mix name.
pub fn baseline_cells(baseline: &Value) -> Vec<RunCell> {
    let runs = baseline
        .get("runs")
        .and_then(|r| r.as_array())
        .unwrap_or(&[]);
    let mut cells: Vec<RunCell> = runs
        .iter()
        .filter_map(|run| {
            Some(RunCell {
                classifier: run.get("classifier")?.as_str()?.to_string(),
                ruleset: run.get("ruleset")?.as_str()?.to_string(),
                tenants: 0,
                workers: run.get("workers")?.as_u64()?,
                profile: run
                    .get("profile")
                    .and_then(|p| p.as_str())
                    .unwrap_or(DEFAULT_PROFILE)
                    .to_string(),
                mpps: run.get("mpps")?.as_f64()?,
            })
        })
        .collect();
    let churn = baseline
        .get("churn")
        .and_then(|r| r.as_array())
        .unwrap_or(&[]);
    cells.extend(churn.iter().filter_map(|cell| {
        Some(RunCell {
            classifier: cell.get("classifier")?.as_str()?.to_string(),
            ruleset: cell.get("ruleset")?.as_str()?.to_string(),
            tenants: 0,
            workers: cell.get("workers")?.as_u64()?,
            profile: cell.get("profile")?.as_str()?.to_string(),
            mpps: cell.get("mpps_under_churn")?.as_f64()?,
        })
    }));
    let tenants = baseline
        .get("tenants")
        .and_then(|r| r.as_array())
        .unwrap_or(&[]);
    cells.extend(tenants.iter().filter_map(|cell| {
        Some(RunCell {
            classifier: cell.get("classifier")?.as_str()?.to_string(),
            ruleset: cell.get("ruleset")?.as_str()?.to_string(),
            tenants: cell.get("tenants")?.as_u64()?,
            workers: cell.get("workers")?.as_u64()?,
            profile: cell.get("profile")?.as_str()?.to_string(),
            mpps: cell.get("mpps")?.as_f64()?,
        })
    }));
    cells
}

/// Compares fresh cells against a baseline under `tolerance`
/// (a fraction in `[0, 1)`).
pub fn compare(
    baseline: &[RunCell],
    fresh: &[RunCell],
    tolerance: f64,
) -> Result<CheckReport, CheckError> {
    let matched: Vec<(&RunCell, f64)> = fresh
        .iter()
        .filter_map(|cell| {
            baseline
                .iter()
                .find(|b| {
                    b.classifier == cell.classifier
                        && b.ruleset == cell.ruleset
                        && b.tenants == cell.tenants
                        && b.workers == cell.workers
                        && b.profile == cell.profile
                })
                .map(|b| (cell, b.mpps))
        })
        .collect();
    if matched.is_empty() {
        return Err(CheckError::NoComparableCells);
    }

    let mut missing_classifiers: Vec<String> = baseline
        .iter()
        .map(|b| b.classifier.clone())
        .filter(|name| !fresh.iter().any(|f| &f.classifier == name))
        .collect();
    missing_classifiers.sort_unstable();
    missing_classifiers.dedup();

    // Every baseline cell must find a fresh partner: orphaned cells mean
    // the measured envelope shrank (a dropped scenario, a dropped --churn,
    // a narrowed worker ladder) — exactly what the gate exists to catch.
    let missing_cells: Vec<RunCell> = baseline
        .iter()
        .filter(|b| {
            !fresh.iter().any(|f| {
                f.classifier == b.classifier
                    && f.ruleset == b.ruleset
                    && f.tenants == b.tenants
                    && f.workers == b.workers
                    && f.profile == b.profile
            })
        })
        .cloned()
        .collect();

    let mut ratios: Vec<f64> = matched
        .iter()
        .map(|(cell, base)| cell.mpps / base)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median_ratio = ratios[ratios.len() / 2];
    // The calibration factor models *host* speed, which is shared by every
    // cell — it is never allowed above 1: a PR that genuinely speeds up
    // more than half the cells must not raise the bar for the cells it did
    // not touch.  (A slower host pushes the median below 1 and is applied
    // as-is.)
    let calibration = median_ratio.min(1.0);

    let cells = matched
        .into_iter()
        .map(|(cell, base_mpps)| {
            let rel = cell.mpps / (base_mpps * calibration);
            // Profile-aware tolerance: churn cells fold in update pacing
            // and writer contention, tenant cells cross-tenant grouping
            // and per-tenant snapshot traffic (both halfway to 1);
            // multi-worker quiescent cells fold in core count and
            // scheduler placement (a quarter of the way).  The wider
            // churn/tenant bound subsumes the multi-worker widening —
            // those cells always serve on shared multi-worker pools.
            let cell_tolerance = if cell.is_churn() || cell.is_tenant() {
                tolerance + (1.0 - tolerance) / 2.0
            } else if cell.workers > 1 {
                tolerance + (1.0 - tolerance) / 4.0
            } else {
                tolerance
            };
            CellVerdict {
                cell: cell.clone(),
                base_mpps,
                rel,
                regressed: rel < 1.0 - cell_tolerance,
            }
        })
        .collect();

    Ok(CheckReport {
        median_ratio,
        calibration,
        missing_classifiers,
        missing_cells,
        cells,
    })
}

/// Renders a [`CheckReport`] as a GitHub-flavoured markdown document — the
/// per-cell regression table CI appends to `$GITHUB_STEP_SUMMARY` (written
/// by `throughput --check ... --report-md <path>`).
pub fn markdown_report(
    report: &CheckReport,
    baseline_path: &str,
    tolerance: f64,
    host_note: Option<&str>,
) -> String {
    use std::fmt::Write;
    let mut md = String::new();
    let verdict = if report.passed() {
        "✅ passed"
    } else {
        "❌ FAILED"
    };
    let _ = writeln!(md, "### Throughput regression check — {verdict}\n");
    let _ = writeln!(
        md,
        "Compared against `{}`: **{} cells**, median new/baseline ratio \
         ×{:.3}, calibration ×{:.3}, base tolerance {:.0}% \
         (multi-worker and churn cells widened; see README \"Regression gate\").\n",
        baseline_path,
        report.cells.len(),
        report.median_ratio,
        report.calibration,
        tolerance * 100.0
    );
    if let Some(note) = host_note {
        let _ = writeln!(md, "> ⚠️ {note}\n");
    }
    if !report.missing_classifiers.is_empty() {
        let _ = writeln!(
            md,
            "> ❌ baseline classifier(s) missing from the fresh sweep: {}\n",
            report.missing_classifiers.join(", ")
        );
    }
    if !report.missing_cells.is_empty() {
        let _ = writeln!(
            md,
            "> ❌ {} baseline cell(s) have no partner in the fresh sweep \
             (the measured envelope shrank): {}\n",
            report.missing_cells.len(),
            report
                .missing_cells
                .iter()
                .take(8)
                .map(|c| format!("{}/{}/{}x{}", c.classifier, c.ruleset, c.profile, c.workers))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let _ = writeln!(
        md,
        "| classifier | ruleset | profile | workers | base Mpps | new Mpps | rel | status |"
    );
    let _ = writeln!(md, "|---|---|---|--:|--:|--:|--:|---|");
    for v in &report.cells {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {:.3} | {:.3} | {:.2} | {} |",
            v.cell.classifier,
            v.cell.ruleset,
            v.cell.profile,
            v.cell.workers,
            v.base_mpps,
            v.cell.mpps,
            v.rel,
            if v.regressed { "❌ REGRESSION" } else { "ok" }
        );
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;

    fn cell(classifier: &str, ruleset: &str, workers: u64, mpps: f64) -> RunCell {
        profiled(classifier, ruleset, workers, DEFAULT_PROFILE, mpps)
    }

    fn profiled(
        classifier: &str,
        ruleset: &str,
        workers: u64,
        profile: &str,
        mpps: f64,
    ) -> RunCell {
        RunCell {
            classifier: classifier.to_string(),
            ruleset: ruleset.to_string(),
            tenants: 0,
            workers,
            profile: profile.to_string(),
            mpps,
        }
    }

    fn tenant_cell(
        classifier: &str,
        ruleset: &str,
        tenants: u64,
        workers: u64,
        profile: &str,
        mpps: f64,
    ) -> RunCell {
        RunCell {
            tenants,
            ..profiled(classifier, ruleset, workers, profile, mpps)
        }
    }

    #[test]
    fn baseline_cells_parse_and_skip_malformed_records() {
        let doc = json::parse(
            r#"{"runs":[
                {"classifier":"hicuts","ruleset":"acl1_500","workers":1,"mpps":10.0},
                {"classifier":"broken","ruleset":"acl1_500","workers":1},
                {"classifier":"rfc","ruleset":"acl1_500","workers":4,"mpps":20.5}
            ]}"#,
        )
        .unwrap();
        let cells = baseline_cells(&doc);
        assert_eq!(
            cells,
            vec![
                cell("hicuts", "acl1_500", 1, 10.0),
                cell("rfc", "acl1_500", 4, 20.5),
            ]
        );
        assert!(baseline_cells(&json::parse("{}").unwrap()).is_empty());
    }

    #[test]
    fn identical_runs_pass_with_unit_calibration() {
        let base = vec![cell("a", "r", 1, 10.0), cell("b", "r", 1, 20.0)];
        let report = compare(&base, &base, 0.5).unwrap();
        assert_eq!(report.median_ratio, 1.0);
        assert_eq!(report.calibration, 1.0);
        assert!(report.passed());
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn selective_regression_is_flagged() {
        let base = vec![
            cell("a", "r", 1, 10.0),
            cell("b", "r", 1, 20.0),
            cell("c", "r", 1, 30.0),
        ];
        let fresh = vec![
            cell("a", "r", 1, 10.0),
            cell("b", "r", 1, 20.0),
            cell("c", "r", 1, 10.0), // 3x slower, others unchanged
        ];
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert_eq!(report.calibration, 1.0);
        assert_eq!(report.regressions(), 1);
        assert!(!report.passed());
        let bad = report.cells.iter().find(|c| c.regressed).unwrap();
        assert_eq!(bad.cell.classifier, "c");
    }

    #[test]
    fn uniform_host_slowdown_is_calibrated_away() {
        let base = vec![
            cell("a", "r", 1, 10.0),
            cell("b", "r", 1, 20.0),
            cell("c", "r", 1, 30.0),
        ];
        let fresh: Vec<RunCell> = base
            .iter()
            .map(|c| cell(&c.classifier, &c.ruleset, c.workers, c.mpps / 3.0))
            .collect();
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert!((report.calibration - 1.0 / 3.0).abs() < 1e-9);
        assert!(report.passed());
    }

    #[test]
    fn broad_speedup_does_not_raise_the_bar_for_untouched_cells() {
        let base = vec![
            cell("a", "r", 1, 10.0),
            cell("b", "r", 1, 10.0),
            cell("c", "r", 1, 10.0),
        ];
        let fresh = vec![
            cell("a", "r", 1, 30.0), // 3x faster
            cell("b", "r", 1, 30.0), // 3x faster
            cell("c", "r", 1, 10.0), // untouched — must not be flagged
        ];
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert_eq!(report.calibration, 1.0, "median 3.0 must be capped");
        assert!(report.passed());
    }

    #[test]
    fn multi_worker_cells_get_wider_tolerance() {
        let base = vec![cell("a", "r", 1, 10.0), cell("a", "r", 4, 10.0)];
        // Both cells at 45% of baseline: the 1-worker cell fails (rel 0.45
        // < 0.5) but the 4-worker cell passes its quarter-widened bar
        // (0.45 > 1 - 0.625 = 0.375).  Calibration is the median, which
        // would absorb the slowdown, so pin it with extra unchanged
        // single-worker cells.
        let base_padded = [
            base.clone(),
            vec![
                cell("b", "r", 1, 10.0),
                cell("c", "r", 1, 10.0),
                cell("d", "r", 1, 10.0),
            ],
        ]
        .concat();
        let fresh = vec![
            cell("a", "r", 1, 4.5),
            cell("a", "r", 4, 4.5),
            cell("b", "r", 1, 10.0),
            cell("c", "r", 1, 10.0),
            cell("d", "r", 1, 10.0),
        ];
        let report = compare(&base_padded, &fresh, 0.5).unwrap();
        assert_eq!(report.calibration, 1.0);
        let one = report
            .cells
            .iter()
            .find(|c| c.cell.workers == 1 && c.cell.classifier == "a");
        let four = report.cells.iter().find(|c| c.cell.workers == 4).unwrap();
        assert!(
            one.unwrap().regressed,
            "single-worker 0.45 must fail at 0.5"
        );
        assert!(!four.regressed, "multi-worker 0.45 must pass at 0.625");
        // The old halfway widening (pass above 0.25) is gone: a 30% cell
        // now fails even at 4 workers.
        let fresh_bad: Vec<RunCell> = fresh
            .iter()
            .map(|c| {
                if c.workers == 4 {
                    cell(&c.classifier, &c.ruleset, c.workers, 3.0)
                } else {
                    c.clone()
                }
            })
            .collect();
        let report = compare(&base_padded, &fresh_bad, 0.5).unwrap();
        let four = report.cells.iter().find(|c| c.cell.workers == 4).unwrap();
        assert!(four.regressed, "multi-worker 0.3 must fail at 0.625");
    }

    #[test]
    fn host_metadata_round_trips_and_mismatches_are_described() {
        let doc =
            json::parse(r#"{"host":{"logical_cpus":8,"rustc":"rustc 1.95.0"},"runs":[]}"#).unwrap();
        let base = baseline_host(&doc).unwrap();
        assert_eq!(base.logical_cpus, 8);
        assert_eq!(base.rustc, "rustc 1.95.0");
        // v2 files have no host header.
        assert_eq!(baseline_host(&json::parse("{}").unwrap()), None);

        let same = base.clone();
        assert_eq!(host_mismatch(Some(&base), &same), None);
        assert_eq!(host_mismatch(None, &same), None);
        let other = HostInfo {
            logical_cpus: 4,
            rustc: "rustc 1.96.0".to_string(),
        };
        let note = host_mismatch(Some(&base), &other).unwrap();
        assert!(note.contains("cross-host"), "{note}");
        assert!(note.contains("logical CPUs 4"), "{note}");
        assert!(note.contains("1.96.0"), "{note}");
    }

    #[test]
    fn current_host_probe_is_populated() {
        let host = HostInfo::current();
        assert!(host.logical_cpus >= 1);
        assert!(!host.rustc.is_empty());
    }

    #[test]
    fn vanished_classifier_fails_the_check() {
        let base = vec![cell("a", "r", 1, 10.0), cell("ghost", "r", 1, 10.0)];
        let fresh = vec![cell("a", "r", 1, 10.0)];
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert_eq!(report.missing_classifiers, vec!["ghost".to_string()]);
        assert_eq!(report.regressions(), 0);
        assert!(!report.passed());
    }

    #[test]
    fn orphaned_baseline_cells_fail_the_check() {
        // A fresh run that covers every classifier but loses cells of the
        // baseline's envelope (a dropped worker rung, a dropped scenario,
        // a dropped --churn) must fail even though nothing regressed:
        // the measured envelope shrank.
        let base = vec![
            cell("a", "acl1_500", 1, 10.0),
            cell("a", "acl1_500", 2, 15.0),
            profiled("a", "acl1_500", 2, "uniform+churn-deep10", 8.0),
        ];
        let fresh = vec![cell("a", "acl1_500", 1, 9.5)];
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert_eq!(report.cells.len(), 1, "intersection still compared");
        assert_eq!(report.regressions(), 0);
        assert!(report.missing_classifiers.is_empty());
        assert_eq!(report.missing_cells.len(), 2);
        assert!(!report.passed(), "a shrunken envelope must not pass");
        let md = markdown_report(&report, "b.json", 0.5, None);
        assert!(md.contains("2 baseline cell(s) have no partner"), "{md}");
        assert!(md.contains("a/acl1_500/uniform+churn-deep10x2"), "{md}");
        // The exact envelope compared against itself passes.
        let full = compare(&base, &base.clone(), 0.5).unwrap();
        assert!(full.missing_cells.is_empty());
        assert!(full.passed());
    }

    #[test]
    fn disjoint_cell_sets_are_an_error() {
        let base = vec![cell("a", "r", 1, 10.0)];
        let fresh = vec![cell("b", "x", 2, 10.0)];
        assert_eq!(
            compare(&base, &fresh, 0.5),
            Err(CheckError::NoComparableCells)
        );
    }

    #[test]
    fn churn_cells_parse_from_v4_baselines_and_v3_churn_is_skipped() {
        let doc = json::parse(
            r#"{"runs":[
                {"classifier":"hicuts","ruleset":"acl1_2000","workers":1,"profile":"zipf","mpps":12.0}
            ],"churn":[
                {"classifier":"hicuts-flat","ruleset":"acl1_2000","workers":2,
                 "profile":"uniform+churn-deep10","mpps_under_churn":9.5},
                {"classifier":"hicuts","ruleset":"acl1_2000","mpps_under_churn":7.0}
            ]}"#,
        )
        .unwrap();
        let cells = baseline_cells(&doc);
        assert_eq!(
            cells,
            vec![
                profiled("hicuts", "acl1_2000", 1, "zipf", 12.0),
                profiled("hicuts-flat", "acl1_2000", 2, "uniform+churn-deep10", 9.5),
            ],
            "v3-style churn record without workers/profile must be skipped"
        );
    }

    #[test]
    fn profiles_never_compare_against_each_other() {
        // A zipf cell must not be judged against the uniform baseline of
        // the same (classifier, ruleset, workers), nor churn vs quiescent.
        let base = vec![
            cell("a", "r", 1, 30.0),
            profiled("a", "r", 1, "zipf", 10.0),
            profiled("a", "r", 2, "uniform+churn-sustained", 5.0),
        ];
        let fresh = vec![
            cell("a", "r", 1, 30.0),
            profiled("a", "r", 1, "zipf", 10.0), // 3x below uniform, but like-for-like ok
            profiled("a", "r", 2, "uniform+churn-sustained", 5.0),
        ];
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert_eq!(report.cells.len(), 3);
        assert!(report.passed());
        // A fresh zipf cell with no zipf baseline simply has no partner.
        let fresh_extra = vec![cell("a", "r", 1, 30.0), profiled("a", "r", 4, "zipf", 1.0)];
        let report = compare(&base, &fresh_extra, 0.5).unwrap();
        assert_eq!(report.cells.len(), 1, "unpartnered profile cell skipped");
    }

    #[test]
    fn churn_cells_get_halfway_tolerance() {
        // Pin calibration at 1 with unchanged single-worker cells.
        let pad = vec![
            cell("b", "r", 1, 10.0),
            cell("c", "r", 1, 10.0),
            cell("d", "r", 1, 10.0),
        ];
        let churn = "uniform+churn-deep10";
        let base = [vec![profiled("a", "r", 2, churn, 10.0)], pad.clone()].concat();
        // 0.30 of baseline: a plain 2-worker cell would fail its 0.625
        // widened bar, but a churn cell passes the halfway bar (0.75).
        let fresh = [vec![profiled("a", "r", 2, churn, 3.0)], pad.clone()].concat();
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert_eq!(report.calibration, 1.0);
        assert!(!report.cells[0].regressed, "churn 0.30 passes at 0.75");
        // 0.20 fails even the churn bar.
        let fresh_bad = [vec![profiled("a", "r", 2, churn, 2.0)], pad].concat();
        let report = compare(&base, &fresh_bad, 0.5).unwrap();
        assert!(report.cells[0].regressed, "churn 0.20 fails at 0.75");
    }

    #[test]
    fn tenant_cells_parse_from_v5_baselines() {
        let doc = json::parse(
            r#"{"schema":"pclass-throughput/v5","runs":[
                {"classifier":"hicuts","ruleset":"acl1_2000","workers":1,"mpps":12.0}
            ],"tenants":[
                {"classifier":"hicuts-flat","ruleset":"acl1_10000+15x500","tenants":16,
                 "workers":4,"profile":"uniform+tenants-skew16","mpps":9.5},
                {"classifier":"broken","ruleset":"acl1_2000x4","workers":4,
                 "profile":"uniform+tenants-uni4","mpps":7.0}
            ]}"#,
        )
        .unwrap();
        let cells = baseline_cells(&doc);
        assert_eq!(
            cells,
            vec![
                cell("hicuts", "acl1_2000", 1, 12.0),
                tenant_cell(
                    "hicuts-flat",
                    "acl1_10000+15x500",
                    16,
                    4,
                    "uniform+tenants-skew16",
                    9.5
                ),
            ],
            "a tenants record without a tenant count must be skipped"
        );
        assert!(cells[1].is_tenant());
        assert!(!cells[1].is_churn());
        assert!(!cells[0].is_tenant());
    }

    #[test]
    fn dropping_tenants_orphans_the_committed_tenant_cells() {
        // The exact failure CI's orphan detection exists for: a fresh
        // sweep that ran without --tenants covers every classifier but
        // loses the tenant envelope — it must fail.
        let tag = "uniform+tenants-skew16";
        let base = vec![
            cell("hicuts-flat", "acl1_2000", 1, 10.0),
            tenant_cell("hicuts-flat", "acl1_10000+15x500", 16, 4, tag, 8.0),
        ];
        let fresh = vec![cell("hicuts-flat", "acl1_2000", 1, 10.0)];
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert_eq!(report.missing_cells.len(), 1);
        assert_eq!(report.missing_cells[0].tenants, 16);
        assert!(!report.passed());
        // And the full envelope against itself passes.
        assert!(compare(&base, &base.clone(), 0.5).unwrap().passed());
    }

    #[test]
    fn tenant_cells_get_halfway_tolerance_and_never_cross_compare() {
        let pad = vec![
            cell("b", "r", 1, 10.0),
            cell("c", "r", 1, 10.0),
            cell("d", "r", 1, 10.0),
        ];
        let tag = "uniform+tenants-uni4";
        // Same classifier/workers, one single-tenant, one 4-tenant: they
        // must pair with their own kind only.
        let base = [
            vec![
                cell("a", "acl1_2000", 4, 30.0),
                tenant_cell("a", "acl1_2000x4", 4, 4, tag, 10.0),
            ],
            pad.clone(),
        ]
        .concat();
        // Tenant cell at 0.30 of baseline: fails the quarter-widened
        // multi-worker bar (0.625) but passes the halfway tenant bar
        // (0.75).  The quiescent 4-worker cell is untouched.
        let fresh = [
            vec![
                cell("a", "acl1_2000", 4, 30.0),
                tenant_cell("a", "acl1_2000x4", 4, 4, tag, 3.0),
            ],
            pad.clone(),
        ]
        .concat();
        let report = compare(&base, &fresh, 0.5).unwrap();
        assert_eq!(report.calibration, 1.0);
        assert_eq!(report.cells.len(), 5);
        let tenant = report.cells.iter().find(|c| c.cell.is_tenant()).unwrap();
        assert!(!tenant.regressed, "tenant 0.30 passes at 0.75");
        // 0.20 fails even the tenant bar.
        let fresh_bad = [
            vec![
                cell("a", "acl1_2000", 4, 30.0),
                tenant_cell("a", "acl1_2000x4", 4, 4, tag, 2.0),
            ],
            pad,
        ]
        .concat();
        let report = compare(&base, &fresh_bad, 0.5).unwrap();
        let tenant = report.cells.iter().find(|c| c.cell.is_tenant()).unwrap();
        assert!(tenant.regressed, "tenant 0.20 fails at 0.75");
    }

    #[test]
    fn markdown_report_renders_the_per_cell_table() {
        let base = vec![cell("a", "r", 1, 10.0), cell("b", "r", 1, 10.0)];
        let fresh = vec![cell("a", "r", 1, 10.0), cell("b", "r", 1, 1.0)];
        let report = compare(&base, &fresh, 0.5).unwrap();
        let md = markdown_report(
            &report,
            "BENCH_throughput_quick.json",
            0.5,
            Some("cross-host"),
        );
        assert!(
            md.contains("### Throughput regression check — ❌ FAILED"),
            "{md}"
        );
        assert!(
            md.contains("| classifier | ruleset | profile | workers |"),
            "{md}"
        );
        assert!(
            md.contains("| a | r | uniform | 1 | 10.000 | 10.000 | 1.00 | ok |"),
            "{md}"
        );
        assert!(md.contains("❌ REGRESSION"), "{md}");
        assert!(md.contains("cross-host"), "{md}");
        assert!(md.contains("2 cells"), "{md}");
        let ok = markdown_report(
            &compare(&base, &base.clone(), 0.5).unwrap(),
            "x.json",
            0.5,
            None,
        );
        assert!(ok.contains("✅ passed"), "{ok}");
        assert!(!ok.contains("⚠️"), "{ok}");
    }
}
