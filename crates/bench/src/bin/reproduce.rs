//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p pclass-bench --bin reproduce -- all
//! cargo run --release -p pclass-bench --bin reproduce -- table4 --quick
//! ```
//!
//! Subcommands: `figures`, `table2`, `table3`, `table4`, `table5`, `table6`,
//! `table7`, `table8`, `speedups`, `power`, `tcam`, `speed_tradeoff`, `all`.
//! The `--quick` flag scales the largest rulesets down so the whole suite
//! finishes in a couple of minutes; the recorded outputs in EXPERIMENTS.md
//! were produced without it.

use pclass_algos::Classifier;
use pclass_bench::*;
use pclass_classbench::{table4_sizes, SeedStyle};
use pclass_core::builder::{BuildConfig, CutAlgorithm, SpeedMode};
use pclass_core::hw::Accelerator;
use pclass_core::program::HardwareProgram;
use pclass_energy::{AcceleratorEnergyModel, DeviceModel, Sa1100Model, SramPart, TcamPart};
use pclass_tcam::TcamClassifier;
use pclass_types::toy;

const TRACE_PACKETS: usize = 20_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let run = |name: &str| command == "all" || command == name;

    if run("figures") {
        figures();
    }
    if run("table2") {
        table2();
    }
    if run("table3") {
        table3();
    }
    if run("table4") {
        table4(quick);
    }
    if run("table5") {
        table5();
    }
    if run("table6") {
        table6();
    }
    if run("table7") {
        table7();
    }
    if run("table8") {
        table8();
    }
    if run("speedups") {
        speedups();
    }
    if run("power") {
        power();
    }
    if run("tcam") {
        tcam();
    }
    if run("speed_tradeoff") {
        speed_tradeoff();
    }
}

/// Figures 1–3: the worked example on the Table 1 ruleset.
fn figures() {
    println!("== Figures 1-3: decision trees for the Table 1 ruleset (binth 3) ==");
    let rs = toy::table1_ruleset();
    let hicuts = pclass_algos::HiCutsClassifier::build(&rs, &pclass_algos::HiCutsConfig::figure1());
    println!("-- Figure 1 (HiCuts) --\n{}", hicuts.tree().dump());
    let hyper =
        pclass_algos::HyperCutsClassifier::build(&rs, &pclass_algos::HyperCutsConfig::figure3());
    println!("-- Figure 3 (HyperCuts) --\n{}", hyper.tree().dump());
}

/// Table 2: memory for the search structure + ruleset, software vs hardware.
fn table2() {
    println!(
        "\n== Table 2: memory for the search structure and ruleset (bytes), spfac=4, speed=1 =="
    );
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "rules", "sw HiCuts", "sw HyperCuts", "hw HiCuts", "hw HyperCuts"
    );
    for &size in &ACL_TABLE_SIZES {
        let rs = acl_ruleset(size);
        let sw_hi = software_hicuts(&rs).memory_bytes();
        let sw_hy = software_hypercuts(&rs).memory_bytes();
        let hw_hi = plan_hardware(&rs, CutAlgorithm::HiCuts)
            .map(|(s, _)| s.memory_bytes)
            .unwrap_or(0);
        let hw_hy = plan_hardware(&rs, CutAlgorithm::HyperCuts)
            .map(|(s, _)| s.memory_bytes)
            .unwrap_or(0);
        println!("{size:>6} | {sw_hi:>12} {sw_hy:>12} | {hw_hi:>12} {hw_hy:>12}");
    }
}

/// Table 3: energy used to build the search structure (SA-1100 model).
fn table3() {
    println!("\n== Table 3: energy to build the search structure (J), spfac=4, speed=1 ==");
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>8}",
        "rules", "sw HiCuts", "sw HyperCuts", "hw HiCuts", "hw HyperCuts", "ratio"
    );
    let model = Sa1100Model::new();
    for &size in &ACL_TABLE_SIZES {
        let rs = acl_ruleset(size);
        let sw_hi = model.build_energy_j(software_hicuts(&rs).build_stats());
        let sw_hy = model.build_energy_j(software_hypercuts(&rs).build_stats());
        let hw_hi = plan_hardware(&rs, CutAlgorithm::HiCuts)
            .map(|(_, b)| model.build_energy_j(&b))
            .unwrap_or(0.0);
        let hw_hy = plan_hardware(&rs, CutAlgorithm::HyperCuts)
            .map(|(_, b)| model.build_energy_j(&b))
            .unwrap_or(0.0);
        println!(
            "{size:>6} | {sw_hi:>12.3e} {sw_hy:>12.3e} | {hw_hi:>12.3e} {hw_hy:>12.3e} | {:>7.2}x",
            sw_hi / hw_hi.max(1e-12)
        );
    }
}

/// Table 4: memory and worst-case cycles for acl1/fw1/ipc1 ClassBench sets.
fn table4(quick: bool) {
    println!("\n== Table 4: memory (bytes) and worst-case clock cycles, spfac=4, speed=1 ==");
    for style in SeedStyle::ALL {
        println!("-- {} --", style.name());
        println!(
            "{:>7} | {:>12} {:>7} | {:>12} {:>7}",
            "rules", "HiCuts mem", "cycles", "HyperC mem", "cycles"
        );
        let sizes: Vec<usize> = table4_sizes(style)
            .into_iter()
            .filter(|&s| !quick || s <= 5_000)
            .collect();
        for size in sizes {
            let rs = styled_ruleset(style, size);
            let hi = plan_hardware(&rs, CutAlgorithm::HiCuts);
            let hy = plan_hardware(&rs, CutAlgorithm::HyperCuts);
            let fmt = |p: &Option<(
                pclass_core::program::ProgramStats,
                pclass_algos::BuildStats,
            )>| match p {
                Some((s, _)) => (s.memory_bytes.to_string(), s.worst_case_cycles.to_string()),
                None => ("n/a".to_string(), "n/a".to_string()),
            };
            let (hi_mem, hi_cyc) = fmt(&hi);
            let (hy_mem, hy_cyc) = fmt(&hy);
            println!("{size:>7} | {hi_mem:>12} {hi_cyc:>7} | {hy_mem:>12} {hy_cyc:>7}");
        }
    }
}

/// Table 5: device comparison.
fn table5() {
    println!("\n== Table 5: device comparison ==");
    println!(
        "{:<24} {:>9} {:>8} {:>10} {:>12} {:>14}",
        "device", "process", "voltage", "freq [MHz]", "power [mW]", "power* [mW]"
    );
    for device in [
        DeviceModel::fpga_virtex5(),
        DeviceModel::asic_65nm(),
        DeviceModel::strongarm_sa1100(),
    ] {
        println!(
            "{:<24} {:>7}nm {:>7}V {:>10.0} {:>12.2} {:>14.2}",
            device.name,
            device.node.process_nm,
            device.node.voltage_v,
            device.frequency_hz / 1e6,
            device.power_w * 1e3,
            device.normalized_power_w() * 1e3
        );
    }
    let asic = DeviceModel::asic_65nm();
    let fpga = DeviceModel::fpga_virtex5();
    println!(
        "  ASIC area: {} NAND2-equivalent gates",
        asic.area_gates.unwrap()
    );
    if let (Some((slices, sf)), Some((brams, bf))) = (fpga.slices, fpga.block_rams) {
        println!(
            "  FPGA area: {slices} slices ({:.0} %), {brams} block RAMs ({:.0} %)",
            sf * 100.0,
            bf * 100.0
        );
    }
}

/// Tables 6 and 7 share the same measurements; compute once.
fn measure_acl_row(
    size: usize,
) -> (
    SoftwareMeasurement,
    SoftwareMeasurement,
    Option<HardwareMeasurement>,
    Option<HardwareMeasurement>,
) {
    let rs = acl_ruleset(size);
    let trace = trace_for(&rs, TRACE_PACKETS);
    let sw_hi = measure_software(&software_hicuts(&rs), &trace);
    let sw_hy = measure_software(&software_hypercuts(&rs), &trace);
    let hw_hi = measure_hardware(&rs, &trace, CutAlgorithm::HiCuts);
    let hw_hy = measure_hardware(&rs, &trace, CutAlgorithm::HyperCuts);
    (sw_hi, sw_hy, hw_hi, hw_hy)
}

/// Table 6: average normalised energy per classified packet.
fn table6() {
    println!("\n== Table 6: average normalised energy per packet (J), spfac=4, speed=1 ==");
    println!(
        "{:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
        "rules", "sw HiCuts", "sw HyperC", "ASIC HiC", "ASIC HypC", "FPGA HiC", "FPGA HypC"
    );
    let asic = AcceleratorEnergyModel::asic();
    let fpga = AcceleratorEnergyModel::fpga();
    for &size in &ACL_TABLE_SIZES {
        let (sw_hi, sw_hy, hw_hi, hw_hy) = measure_acl_row(size);
        let e = |m: &Option<HardwareMeasurement>, model: &AcceleratorEnergyModel| {
            m.as_ref()
                .map(|h| model.energy_per_packet_j(&h.report))
                .unwrap_or(f64::NAN)
        };
        println!(
            "{size:>6} | {:>11.3e} {:>11.3e} | {:>11.3e} {:>11.3e} | {:>11.3e} {:>11.3e}",
            sw_hi.energy_per_packet_j,
            sw_hy.energy_per_packet_j,
            e(&hw_hi, &asic),
            e(&hw_hy, &asic),
            e(&hw_hi, &fpga),
            e(&hw_hy, &fpga),
        );
    }
}

/// Table 7: packets classified per second.
fn table7() {
    println!("\n== Table 7: packets classified in one second, spfac=4, speed=1 ==");
    println!(
        "{:>6} | {:>11} {:>11} | {:>13} {:>13} | {:>12} {:>12}",
        "rules",
        "sw HiCuts",
        "sw HyperC",
        "ASIC HiCuts",
        "ASIC HyperC",
        "FPGA HiCuts",
        "FPGA HyperC"
    );
    let asic = AcceleratorEnergyModel::asic();
    let fpga = AcceleratorEnergyModel::fpga();
    for &size in &ACL_TABLE_SIZES {
        let (sw_hi, sw_hy, hw_hi, hw_hy) = measure_acl_row(size);
        let pps = |m: &Option<HardwareMeasurement>, model: &AcceleratorEnergyModel| {
            m.as_ref()
                .map(|h| model.packets_per_second(&h.report))
                .unwrap_or(f64::NAN)
        };
        println!(
            "{size:>6} | {:>11.0} {:>11.0} | {:>13.0} {:>13.0} | {:>12.0} {:>12.0}",
            sw_hi.packets_per_second,
            sw_hy.packets_per_second,
            pps(&hw_hi, &asic),
            pps(&hw_hy, &asic),
            pps(&hw_hi, &fpga),
            pps(&hw_hy, &fpga),
        );
    }
}

/// Table 8: worst-case memory accesses per lookup.
fn table8() {
    println!("\n== Table 8: worst-case memory accesses, spfac=4, speed=1 ==");
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "rules", "sw HiCuts", "sw HyperC", "hw HiCuts", "hw HyperC"
    );
    for &size in &ACL_TABLE_SIZES {
        let rs = acl_ruleset(size);
        let sw_hi = software_hicuts(&rs)
            .worst_case_memory_accesses()
            .unwrap_or(0);
        let sw_hy = software_hypercuts(&rs)
            .worst_case_memory_accesses()
            .unwrap_or(0);
        let hw = |algo| {
            plan_hardware(&rs, algo)
                .map(|(s, _)| s.worst_case_cycles)
                .unwrap_or(0)
        };
        println!(
            "{size:>6} | {sw_hi:>10} {sw_hy:>10} | {:>10} {:>10}",
            hw(CutAlgorithm::HiCuts),
            hw(CutAlgorithm::HyperCuts)
        );
    }
}

/// §5.2 headline speed-ups: ASIC accelerator vs RFC and vs software HiCuts.
fn speedups() {
    println!("\n== §5.2 speed-ups on the largest acl1 set ==");
    let size = *ACL_TABLE_SIZES.last().unwrap();
    let rs = acl_ruleset(size);
    let trace = trace_for(&rs, TRACE_PACKETS);
    let asic = AcceleratorEnergyModel::asic();

    let hw = measure_hardware(&rs, &trace, CutAlgorithm::HyperCuts).expect("acl set fits");
    let hw_pps = asic.packets_per_second(&hw.report);

    let sw_hicuts = measure_software(&software_hicuts(&rs), &trace);
    println!("  ASIC accelerator : {:>13.0} packets/s", hw_pps);
    println!(
        "  software HiCuts  : {:>13.0} packets/s  ({:.0}x slower)",
        sw_hicuts.packets_per_second,
        hw_pps / sw_hicuts.packets_per_second
    );

    match pclass_algos::RfcClassifier::build(&rs) {
        Ok(rfc) => {
            let m = measure_software(&rfc, &trace);
            println!(
                "  software RFC     : {:>13.0} packets/s  ({:.0}x slower)",
                m.packets_per_second,
                hw_pps / m.packets_per_second
            );
        }
        Err(e) => println!("  software RFC     : preprocessing exceeded its memory budget ({e})"),
    }

    let sa1100 = Sa1100Model::new();
    let sw_energy = sa1100.normalized_energy_j(&sw_hicuts.avg_ops);
    let hw_energy = asic.energy_per_packet_j(&hw.report);
    println!(
        "  energy per packet: software HiCuts {:.3e} J vs ASIC {:.3e} J  ({:.0}x saving)",
        sw_energy,
        hw_energy,
        sw_energy / hw_energy
    );
}

/// §5.3 power comparison against TCAM and SRAM parts.
fn power() {
    println!("\n== §5.3 power comparison ==");
    let asic = DeviceModel::asic_65nm();
    let fpga = DeviceModel::fpga_virtex5();
    let ayama_77 = TcamPart::ayama_10128_at_77mhz();
    let ayama_133 = TcamPart::ayama_10512_at_133mhz();
    println!(
        "  FPGA accelerator, 614,400 B @ 77 MHz : {:>8.2} W",
        fpga.power_w
    );
    println!(
        "  {}            : {:>8.2} W",
        ayama_77.name, ayama_77.power_w
    );
    println!(
        "  ASIC accelerator @ 133 MHz           : {:>8.2} mW",
        asic.power_at_frequency_w(133e6) * 1e3
    );
    println!(
        "  ASIC accelerator @ 226 MHz           : {:>8.2} mW",
        asic.power_w * 1e3
    );
    println!(
        "  {}           : {:>8.2} W",
        ayama_133.name, ayama_133.power_w
    );
    println!(
        "  {} (SRAM) @ 133 MHz   : {:>8.0} mW",
        SramPart::cy7c1381d().name,
        SramPart::cy7c1381d().power_w * 1e3
    );
    println!(
        "  {} (SRAM) @ 250 MHz: {:>8.0} mW",
        SramPart::cy7c1370dv25().name,
        SramPart::cy7c1370dv25().power_w * 1e3
    );
}

/// TCAM storage-efficiency comparison (§1 / §5.3).
fn tcam() {
    println!("\n== TCAM storage efficiency (range-to-prefix expansion) ==");
    println!(
        "{:<10} {:>7} {:>9} {:>12} {:>12}",
        "ruleset", "rules", "entries", "expansion", "efficiency"
    );
    for style in SeedStyle::ALL {
        let rs = styled_ruleset(style, 1_000);
        match TcamClassifier::program(&rs) {
            Ok(t) => {
                let s = t.stats();
                println!(
                    "{:<10} {:>7} {:>9} {:>11.2}x {:>11.1}%",
                    rs.name(),
                    s.rules,
                    s.entries,
                    s.expansion_factor,
                    s.storage_efficiency * 100.0
                );
            }
            Err(e) => println!("{:<10} programming failed: {e}", rs.name()),
        }
    }
}

/// The speed-parameter trade-off (Eq. 5 vs Eq. 7).
fn speed_tradeoff() {
    println!("\n== speed parameter trade-off (Eq. 5 vs Eq. 7) ==");
    println!(
        "{:>6} | {:>12} {:>7} | {:>12} {:>7}",
        "rules", "speed=0 mem", "cycles", "speed=1 mem", "cycles"
    );
    for &size in &[500usize, 1_000, 2_191, 5_000] {
        let rs = acl_ruleset(size);
        let mut row = Vec::new();
        for speed in [SpeedMode::MemoryEfficient, SpeedMode::Throughput] {
            let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
            cfg.speed = speed;
            match HardwareProgram::build_with_capacity(&rs, &cfg, 4096) {
                Ok(p) => row.push((p.memory_bytes(), p.worst_case_cycles())),
                Err(_) => row.push((0, 0)),
            }
        }
        println!(
            "{size:>6} | {:>12} {:>7} | {:>12} {:>7}",
            row[0].0, row[0].1, row[1].0, row[1].1
        );
    }
    // Observed average cycles on a trace, to show the throughput effect.
    let rs = acl_ruleset(2_191);
    let trace = trace_for(&rs, TRACE_PACKETS);
    for speed in [SpeedMode::MemoryEfficient, SpeedMode::Throughput] {
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
        cfg.speed = speed;
        let program = HardwareProgram::build_with_capacity(&rs, &cfg, 4096).unwrap();
        let report = Accelerator::new(&program).classify_trace(&trace);
        println!(
            "  speed={} observed average cycles/packet on acl1_2191: {:.3}",
            cfg.speed.as_u8(),
            report.avg_cycles_per_packet()
        );
    }
}
