//! Serving-throughput harness: every classifier, batched and multi-core,
//! with an optional regression gate against a committed baseline and an
//! optional live-update ("churn") workload.
//!
//! ```text
//! cargo run --release -p pclass-bench --bin throughput
//! cargo run --release -p pclass-bench --bin throughput -- --quick
//! cargo run --release -p pclass-bench --bin throughput -- --out perf.json
//! cargo run --release -p pclass-bench --bin throughput -- --quick --churn \
//!     --check BENCH_throughput_quick.json --tolerance 0.5
//! ```
//!
//! Runs every classifier in the workspace — linear search, original HiCuts
//! and HyperCuts plus their flat-arena variants, RFC, the functional TCAM
//! model and the accelerator model with both modified cut algorithms —
//! through the `pclass-engine` serving layer over ClassBench-style
//! generated rulesets (the acl1 size ladder plus one `fw1` and one `ipc1`
//! row at 2 k rules, so the serving trajectory covers all three paper
//! workload families) at several worker counts, verifies every run
//! packet-for-packet against linear search, and writes the measurements to
//! `BENCH_throughput.json` (schema `pclass-throughput/v3`, documented in
//! the README's "Serving throughput" section).  The header records the
//! measuring host (logical CPU count, rustc version) so `--check` can flag
//! cross-host comparisons.  Each `builds` record carries the memory
//! footprint of one classifier build; the flat-arena variants additionally
//! record their arena layout statistics.
//!
//! Every cell is measured as the best of two back-to-back engine runs (the
//! first doubling as a warmup), so a one-off scheduler burst on a shared
//! CI runner cannot produce a spuriously slow cell.
//!
//! With `--churn` the harness additionally measures the updatable
//! classifiers (HiCuts/HyperCuts pointer trees and their flat arenas)
//! serving the 2 k-rule workloads *while* a deterministic 1% insert+delete
//! stream lands through the epoch-swap serving cell, recording throughput
//! under churn, per-burst update-latency percentiles and the structures'
//! update counters into the `churn` array — and hard-fails (exit 1) unless
//! the post-churn structure classifies packet-for-packet like a
//! from-scratch rebuild of the surviving ruleset.  Quick mode churns only
//! the acl1 row; the full sweep churns all three 2 k families.
//!
//! With `--check <baseline.json>` the harness re-runs the sweep and then
//! compares every `(classifier, ruleset, workers)` cell present in both the
//! fresh run and the baseline.  Because absolute Mpps depends on the host,
//! the comparison is *calibrated*: the median of the per-cell new/baseline
//! ratios, capped at 1, is taken as the machine-speed factor, and a cell
//! regresses when it falls more than `--tolerance` (default 0.5, i.e. 50%)
//! below its calibrated expectation; multi-worker cells, which fold in the
//! host's core count and scheduler placement, get a tolerance a quarter of
//! the way to 1 (0.625 at the default — CI compares quick against the
//! committed quick baseline, like for like, so the old halfway widening is
//! no longer needed).  A uniform slowdown moves the calibration factor,
//! not the verdict, while a broad genuine *speedup* never raises the bar
//! for untouched cells (the cap) — the gate exists to catch *selective*
//! regressions, e.g. a PR that quietly gives back the flat-tree or
//! phase-major batching wins on one hot path while everything else keeps
//! its speed.  CI runs `--quick --churn --check BENCH_throughput_quick.json`
//! as the `perf-smoke` job.
//!
//! Exit status: 1 if any classifier disagrees with linear search or any
//! churn cell fails its post-churn verification, 2 if the regression check
//! fails, 3 if the baseline cannot be read or shares no cells with the
//! fresh run.

use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
use pclass_algos::hypercuts::{HyperCutsClassifier, HyperCutsConfig};
use pclass_bench::check::{self, HostInfo, RunCell};
use pclass_bench::churn::{self, ChurnConfig};
use pclass_bench::{acl_ruleset, serving_roster, styled_ruleset, trace_for, WORKLOAD_SEED};
use pclass_classbench::SeedStyle;
use pclass_engine::{Engine, WorkerReport};
use pclass_types::{ArenaStats, MatchResult, RuleSet, Trace};
use serde::json;
use serde::Serialize;
use std::sync::Arc;

/// One engine run in the JSON record.
#[derive(Debug, Clone, Serialize)]
struct RunRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    packets: usize,
    workers: usize,
    batch: usize,
    wall_ns: u64,
    mpps: f64,
    per_worker: Vec<WorkerReport>,
}

/// A classifier that could not be built for a ruleset (with the reason), so
/// gaps in the trajectory are explicit rather than silent.
#[derive(Debug, Clone, Serialize)]
struct SkipRecord {
    classifier: String,
    ruleset: String,
    reason: String,
}

/// Memory footprint of one classifier build (one record per successful
/// (classifier, ruleset) build; `arena` is present for the flat variants).
#[derive(Debug, Clone, Serialize)]
struct BuildRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    memory_bytes: usize,
    arena: Option<ArenaStats>,
}

/// One live-update cell: an updatable classifier serving under a 1%
/// insert+delete stream through the epoch-swap cell.
#[derive(Debug, Clone, Serialize)]
struct ChurnRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    updates: u64,
    bursts: u64,
    packets_served: u64,
    serve_wall_ns: u64,
    mpps_under_churn: f64,
    update_p50_ns: u64,
    update_p95_ns: u64,
    update_p99_ns: u64,
    inserts: u64,
    deletes: u64,
    reflattens: u64,
    overflow_rules: u64,
    verified: bool,
}

/// Top-level schema of `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
struct BenchFile {
    schema: String,
    seed: u64,
    quick: bool,
    host: HostInfo,
    worker_counts: Vec<usize>,
    runs: Vec<RunRecord>,
    skipped: Vec<SkipRecord>,
    builds: Vec<BuildRecord>,
    churn: Vec<ChurnRecord>,
}

struct Workload {
    ruleset: RuleSet,
    trace: Trace,
    truth: Vec<MatchResult>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let churn_mode = args.iter().any(|a| a == "--churn");
    // A value-taking flag with its value missing must be a hard error: a
    // silently ignored `--check` would leave the regression gate off while
    // CI stays green.
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a value");
                    std::process::exit(3);
                })
        })
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let check_path = flag_value("--check");
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            let parsed: f64 = t.parse().unwrap_or(f64::NAN);
            // Outside [0, 1) the gate degenerates: >= 1 can never flag a
            // cell (silently off), < 0 flags nearly all of them.
            if !(0.0..1.0).contains(&parsed) {
                eprintln!("--tolerance must be a fraction in [0, 1), got {t}");
                std::process::exit(3);
            }
            parsed
        })
        .unwrap_or(0.5);

    // Read the baseline *before* the sweep so `--check` and `--out` may
    // point at the same file (the CI perf-smoke job does exactly that).
    let baseline = check_path.as_deref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(3);
        });
        json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(3);
        })
    });

    let acl_sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[500, 2_000, 10_000]
    };
    let packets = if quick { 4_000 } else { 20_000 };
    let worker_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };

    // The acl1 ladder plus one fw1 and one ipc1 row at 2 k rules, so the
    // serving trajectory (not just `reproduce`) covers all three paper
    // workload families.
    let mut rulesets: Vec<RuleSet> = acl_sizes.iter().map(|&s| acl_ruleset(s)).collect();
    rulesets.push(styled_ruleset(SeedStyle::Fw, 2_000));
    rulesets.push(styled_ruleset(SeedStyle::Ipc, 2_000));

    let mut runs = Vec::new();
    let mut skipped = Vec::new();
    let mut builds = Vec::new();
    let mut churn_records = Vec::new();
    let mut mismatches = 0usize;
    let mut churn_failures = 0usize;

    for ruleset in rulesets {
        let size = ruleset.len();
        let trace = trace_for(&ruleset, packets);
        let truth = trace.ground_truth(&ruleset);
        let workload = Workload {
            ruleset,
            trace,
            truth,
        };
        println!(
            "== {} ({} rules, {} packets) ==",
            workload.ruleset.name(),
            size,
            packets
        );
        println!(
            "{:<14} {:>7} | {:>10} {:>10}",
            "classifier", "workers", "wall [ms]", "Mpps"
        );

        let roster = serving_roster(&workload.ruleset);
        for skip in roster.skipped {
            eprintln!(
                "skip {} on {}: {}",
                skip.classifier,
                workload.ruleset.name(),
                skip.reason
            );
            skipped.push(SkipRecord {
                classifier: skip.classifier.to_string(),
                ruleset: workload.ruleset.name().to_string(),
                reason: skip.reason,
            });
        }
        for build in roster.builds {
            builds.push(BuildRecord {
                classifier: build.classifier.to_string(),
                ruleset: workload.ruleset.name().to_string(),
                rules: size,
                memory_bytes: build.memory_bytes,
                arena: build.arena,
            });
        }
        for (name, classifier) in roster.classifiers {
            for &workers in worker_counts {
                let engine = Engine::from_shared(workers, Arc::clone(&classifier));
                // Best of two back-to-back runs: the first doubles as a
                // warmup (cold arena, page faults), and a one-off scheduler
                // burst in either window cannot produce a spuriously slow
                // cell — important because the --check gate compares single
                // cells against the committed baseline.
                let first = engine.classify_trace(&workload.trace);
                let second = engine.classify_trace(&workload.trace);
                let run = if second.report.mpps >= first.report.mpps {
                    second
                } else {
                    first
                };
                if run.results != workload.truth {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH: {} with {} workers disagrees with linear search on {}",
                        name,
                        workers,
                        workload.ruleset.name()
                    );
                    continue;
                }
                println!(
                    "{:<14} {:>7} | {:>10.2} {:>10.3}",
                    name,
                    workers,
                    run.report.wall_ns as f64 / 1e6,
                    run.report.mpps
                );
                runs.push(RunRecord {
                    classifier: name.to_string(),
                    ruleset: workload.ruleset.name().to_string(),
                    rules: size,
                    packets,
                    workers,
                    batch: engine.batch_size(),
                    wall_ns: run.report.wall_ns,
                    mpps: run.report.mpps,
                    per_worker: run.report.per_worker,
                });
            }
        }

        // Live-update cells: the 2 k-rule rulesets carry the churn
        // trajectory (quick mode churns only the acl1 row to keep the CI
        // smoke fast).
        let churn_this =
            churn_mode && size == 2_000 && (!quick || workload.ruleset.name().starts_with("acl1"));
        if churn_this {
            let (records, failures) = churn_sweep(&workload.ruleset, &workload.trace);
            churn_records.extend(records);
            churn_failures += failures;
        }
    }

    let file = BenchFile {
        schema: "pclass-throughput/v3".to_string(),
        seed: WORKLOAD_SEED,
        quick,
        host: HostInfo::current(),
        worker_counts: worker_counts.to_vec(),
        runs,
        skipped,
        builds,
        churn: churn_records,
    };
    std::fs::write(&out_path, json::to_file_string(&file))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "\nwrote {} ({} runs, {} churn cells)",
        out_path,
        file.runs.len(),
        file.churn.len()
    );

    if mismatches > 0 {
        eprintln!("{mismatches} engine run(s) disagreed with linear search");
        std::process::exit(1);
    }
    if churn_failures > 0 {
        eprintln!("{churn_failures} churn cell(s) failed post-churn verification");
        std::process::exit(1);
    }

    if let (Some(baseline), Some(path)) = (baseline, check_path) {
        if !check_against_baseline(&baseline, &path, &file.runs, &file.host, tolerance) {
            std::process::exit(2);
        }
    }
}

/// Runs the churn workload over every updatable classifier for one
/// ruleset; returns the records and the number of verification failures.
fn churn_sweep(ruleset: &RuleSet, trace: &Trace) -> (Vec<ChurnRecord>, usize) {
    let updates = churn::churn_updates(ruleset, 0.01);
    let config = ChurnConfig::default();
    println!(
        "-- churn: {} updates in bursts of {}, {} serving workers --",
        updates.len(),
        config.burst_ops,
        config.workers
    );
    println!(
        "{:<14} | {:>10} {:>12} {:>12} {:>12}  verified",
        "classifier", "Mpps", "p50 [us]", "p99 [us]", "reflattens"
    );
    let mut records = Vec::new();
    let mut failures = 0usize;

    let mut cell = |name: &str, m: Result<churn::ChurnMeasurement, String>| match m {
        Ok(m) => {
            if !m.verified {
                failures += 1;
                eprintln!(
                    "CHURN MISMATCH: {} on {} disagrees with a fresh rebuild after churn",
                    name,
                    ruleset.name()
                );
            }
            println!(
                "{:<14} | {:>10.3} {:>12.1} {:>12.1} {:>12}  {}",
                name,
                m.mpps_under_churn,
                m.update_p50_ns as f64 / 1e3,
                m.update_p99_ns as f64 / 1e3,
                m.update_stats.reflattens,
                if m.verified { "yes" } else { "NO" }
            );
            records.push(ChurnRecord {
                classifier: name.to_string(),
                ruleset: ruleset.name().to_string(),
                rules: ruleset.len(),
                updates: m.updates,
                bursts: m.bursts,
                packets_served: m.packets_served,
                serve_wall_ns: m.serve_wall_ns,
                mpps_under_churn: m.mpps_under_churn,
                update_p50_ns: m.update_p50_ns,
                update_p95_ns: m.update_p95_ns,
                update_p99_ns: m.update_p99_ns,
                inserts: m.update_stats.inserts,
                deletes: m.update_stats.deletes,
                reflattens: m.update_stats.reflattens,
                overflow_rules: m.update_stats.overflow_rules,
                verified: m.verified,
            });
        }
        Err(e) => {
            failures += 1;
            eprintln!("CHURN ERROR: {} on {}: {}", name, ruleset.name(), e);
        }
    };

    let hicuts = |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults());
    let hypercuts =
        |rs: &RuleSet| HyperCutsClassifier::build(rs, &HyperCutsConfig::paper_defaults());
    cell(
        "hicuts",
        churn::run_churn(hicuts(ruleset), hicuts, trace, &updates, &config),
    );
    cell(
        "hicuts-flat",
        churn::run_churn(
            hicuts(ruleset).flatten(),
            |rs| hicuts(rs).flatten(),
            trace,
            &updates,
            &config,
        ),
    );
    cell(
        "hypercuts",
        churn::run_churn(hypercuts(ruleset), hypercuts, trace, &updates, &config),
    );
    cell(
        "hypercuts-flat",
        churn::run_churn(
            hypercuts(ruleset).flatten(),
            |rs| hypercuts(rs).flatten(),
            trace,
            &updates,
            &config,
        ),
    );
    (records, failures)
}

/// Runs the [`check`] comparison and prints the per-cell report; returns
/// `false` when the gate fails (see `pclass_bench::check` for the model —
/// the decision logic is unit-tested there).
fn check_against_baseline(
    baseline: &json::Value,
    path: &str,
    runs: &[RunRecord],
    current_host: &HostInfo,
    tolerance: f64,
) -> bool {
    let base = check::baseline_cells(baseline);
    let base_host = check::baseline_host(baseline);
    let fresh: Vec<RunCell> = runs
        .iter()
        .map(|run| RunCell {
            classifier: run.classifier.clone(),
            ruleset: run.ruleset.clone(),
            workers: run.workers as u64,
            mpps: run.mpps,
        })
        .collect();
    let report = match check::compare(&base, &fresh, tolerance) {
        Ok(report) => report,
        Err(check::CheckError::NoComparableCells) => {
            eprintln!("--check: no comparable (classifier, ruleset, workers) cells in {path}");
            std::process::exit(3);
        }
    };

    if let Some(note) = check::host_mismatch(base_host.as_ref(), current_host) {
        eprintln!("--check: {note}");
    }
    println!(
        "\ncheck vs {path}: {} cells, median ratio x{:.3}, calibration x{:.3}, tolerance {:.0}%",
        report.cells.len(),
        report.median_ratio,
        report.calibration,
        tolerance * 100.0
    );
    println!(
        "{:<16} {:<10} {:>7} | {:>9} {:>9} {:>7}  status",
        "classifier", "ruleset", "workers", "base", "new", "rel"
    );
    for verdict in &report.cells {
        println!(
            "{:<16} {:<10} {:>7} | {:>9.3} {:>9.3} {:>7.2}  {}",
            verdict.cell.classifier,
            verdict.cell.ruleset,
            verdict.cell.workers,
            verdict.base_mpps,
            verdict.cell.mpps,
            verdict.rel,
            if verdict.regressed {
                "REGRESSION"
            } else {
                "ok"
            }
        );
    }
    if !report.missing_classifiers.is_empty() {
        eprintln!(
            "--check: baseline classifier(s) missing from the fresh sweep: {}",
            report.missing_classifiers.join(", ")
        );
    }
    if report.passed() {
        println!("regression check passed");
        true
    } else {
        if report.regressions() > 0 {
            eprintln!(
                "{} cell(s) regressed below the calibrated baseline",
                report.regressions()
            );
        }
        false
    }
}
