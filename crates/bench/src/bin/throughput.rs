//! Serving-throughput harness: every classifier, batched and multi-core.
//!
//! ```text
//! cargo run --release -p pclass-bench --bin throughput
//! cargo run --release -p pclass-bench --bin throughput -- --quick
//! cargo run --release -p pclass-bench --bin throughput -- --out perf.json
//! ```
//!
//! Runs every classifier in the workspace — linear search, original HiCuts
//! and HyperCuts, RFC, the functional TCAM model and the accelerator model
//! with both modified cut algorithms — through the `pclass-engine` serving
//! layer over ClassBench-style generated rulesets at several sizes and
//! worker counts, verifies every run packet-for-packet against linear
//! search, and writes the measurements to `BENCH_throughput.json` (schema
//! documented in the README's "Serving throughput" section).  CI runs
//! `--quick` as the `perf-smoke` job and uploads the JSON as a build
//! artifact, so the numbers form a trajectory across PRs.
//!
//! Exit status is non-zero if any classifier disagrees with linear search,
//! which is what makes the CI job a correctness gate as well as a perf
//! recorder.

use pclass_bench::{acl_ruleset, serving_roster, trace_for, WORKLOAD_SEED};
use pclass_engine::{Engine, WorkerReport};
use pclass_types::{MatchResult, RuleSet, Trace};
use serde::Serialize;
use std::sync::Arc;

/// One engine run in the JSON record.
#[derive(Debug, Clone, Serialize)]
struct RunRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    packets: usize,
    workers: usize,
    batch: usize,
    wall_ns: u64,
    mpps: f64,
    per_worker: Vec<WorkerReport>,
}

/// A classifier that could not be built for a ruleset (with the reason), so
/// gaps in the trajectory are explicit rather than silent.
#[derive(Debug, Clone, Serialize)]
struct SkipRecord {
    classifier: String,
    ruleset: String,
    reason: String,
}

/// Top-level schema of `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
struct BenchFile {
    schema: String,
    seed: u64,
    quick: bool,
    worker_counts: Vec<usize>,
    runs: Vec<RunRecord>,
    skipped: Vec<SkipRecord>,
}

struct Workload {
    ruleset: RuleSet,
    trace: Trace,
    truth: Vec<MatchResult>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[500, 2_000, 10_000]
    };
    let packets = if quick { 4_000 } else { 20_000 };
    let worker_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };

    let mut runs = Vec::new();
    let mut skipped = Vec::new();
    let mut mismatches = 0usize;

    for &size in sizes {
        let ruleset = acl_ruleset(size);
        let trace = trace_for(&ruleset, packets);
        let truth = trace.ground_truth(&ruleset);
        let workload = Workload {
            ruleset,
            trace,
            truth,
        };
        println!(
            "== {} ({} rules, {} packets) ==",
            workload.ruleset.name(),
            size,
            packets
        );
        println!(
            "{:<14} {:>7} | {:>10} {:>10}",
            "classifier", "workers", "wall [ms]", "Mpps"
        );

        let roster = serving_roster(&workload.ruleset);
        for skip in roster.skipped {
            eprintln!(
                "skip {} on {}: {}",
                skip.classifier,
                workload.ruleset.name(),
                skip.reason
            );
            skipped.push(SkipRecord {
                classifier: skip.classifier.to_string(),
                ruleset: workload.ruleset.name().to_string(),
                reason: skip.reason,
            });
        }
        for (name, classifier) in roster.classifiers {
            for &workers in worker_counts {
                let engine = Engine::from_shared(workers, Arc::clone(&classifier));
                let run = engine.classify_trace(&workload.trace);
                if run.results != workload.truth {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH: {} with {} workers disagrees with linear search on {}",
                        name,
                        workers,
                        workload.ruleset.name()
                    );
                    continue;
                }
                println!(
                    "{:<14} {:>7} | {:>10.2} {:>10.3}",
                    name,
                    workers,
                    run.report.wall_ns as f64 / 1e6,
                    run.report.mpps
                );
                runs.push(RunRecord {
                    classifier: name.to_string(),
                    ruleset: workload.ruleset.name().to_string(),
                    rules: size,
                    packets,
                    workers,
                    batch: engine.batch_size(),
                    wall_ns: run.report.wall_ns,
                    mpps: run.report.mpps,
                    per_worker: run.report.per_worker,
                });
            }
        }
    }

    let file = BenchFile {
        schema: "pclass-throughput/v1".to_string(),
        seed: WORKLOAD_SEED,
        quick,
        worker_counts: worker_counts.to_vec(),
        runs,
        skipped,
    };
    std::fs::write(&out_path, serde::json::to_file_string(&file))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {} ({} runs)", out_path, file.runs.len());

    if mismatches > 0 {
        eprintln!("{mismatches} engine run(s) disagreed with linear search");
        std::process::exit(1);
    }
}
