//! Serving-throughput harness: the scenario matrix, batched and
//! multi-core, with an optional regression gate against a committed
//! baseline and optional live-update ("churn") and multi-tenant
//! ("tenants") workload axes.
//!
//! ```text
//! cargo run --release -p pclass-bench --bin throughput
//! cargo run --release -p pclass-bench --bin throughput -- --quick
//! cargo run --release -p pclass-bench --bin throughput -- --out perf.json
//! cargo run --release -p pclass-bench --bin throughput -- --quick --churn --tenants \
//!     --check BENCH_throughput_quick.json --tolerance 0.5 \
//!     --report-md throughput_report.md
//! cargo run --release -p pclass-bench --bin throughput -- --quick --lane-width 1
//! ```
//!
//! `--lane-width {1,4,8,16}` selects the flat-arena walk variant for the
//! whole run (1 = scalar fallback, default 8 = the vectorised lane walk,
//! see `pclass_algos::flat`); the other classifiers ignore it.
//!
//! The sweep is driven by `pclass_bench::scenario` — one declarative
//! matrix of ruleset (style × size, acl up to 64 k rules, fw/ipc to 10 k)
//! × trace profile (`uniform` / `zipf`) × churn profile (quiescent, 1 %
//! bursts, 10 % deep churn, delete-heavy drain, sustained progress-paced
//! stream) × worker count × hot-cache toggle.  Quick mode runs exactly
//! the `quick`-tagged subset of the same matrix, so the per-PR CI gate
//! and the weekly full sweep can never drift apart.  Every quiescent cell
//! serves the whole classifier roster (hardware models are excluded with
//! explicit skip records at ≥32 k rules) and is verified
//! packet-for-packet against linear search; every churn cell hard-fails
//! unless the post-churn structure classifies packet-for-packet like a
//! from-scratch rebuild of the surviving ruleset.
//!
//! Cells with `cache: true` serve through the popularity-adaptive
//! hot-flow cache (`pclass_algos::hotcache`, sized to the trace's flow
//! working set) behind
//! `EngineConfig::hot_cache`; they are verified packet-for-packet on the
//! cold *and* on a warm pass (cache-hit path), carry a `+cache` profile
//! suffix so the gate compares them against their own baseline, and
//! record a `cache` summary (geometry, hits, misses, evictions, hit
//! rate).  The zipf+cache cell's acceptance bar is beating the uncached
//! zipf cell on the same ruleset; the uniform+cache cell is the control
//! that the cache does not tax low-locality traffic.
//!
//! `--tenants` additionally runs the multi-tenant axis
//! (`pclass_bench::scenario::tenant_scenarios`): 1/4/16 tenants with
//! uniform or skewed ruleset sizes, each tenant declared by a
//! `TenantSpec` (scheduling weight, cache share) seeded from the serving
//! roster's per-classifier `spec` hook, each a `LiveClassifier` behind
//! one `TenantRouter`, served as one weighted-fair interleaved tagged
//! trace on the scenario's worker count.  Every tenant cell is verified
//! packet-for-packet *per tenant* against linear-search ground truth and
//! records, next to the router's aggregate Mpps, the throughput of serving
//! the same rulesets solo-sequentially (one tenant at a time, same
//! workers) — the `router_vs_solo` ratio is the cost of sharing the
//! worker pool — plus per-tenant batch-latency percentiles, SLO-relative
//! shares, memory accounting, and rate-based plus weighted Jain fairness
//! indices.  The policy cells gate the tenant API's behaviour on every
//! PR: the `+weighted` cell declares a weight-4 big tenant among fifteen
//! weight-1 neighbours, offers load in weight proportion, and hard-fails
//! unless every tenant's SLO-relative throughput lands within ±10 % and
//! the weighted Jain index reaches 0.95; the `+admission` cell evicts
//! and readmits the smallest tenant mid-trace (a progress-paced
//! controller racing the serving loop) and hard-fails unless the churn
//! phase sustains ≥ 0.8× the static phase with every surviving tenant
//! still packet-for-packet correct and the readmitted tenant verified
//! against linear search; the `+churn-sustained` cell streams
//! progress-paced single-rule updates into tenant 0's `live(t)` handle
//! for the whole measured window.  The churn+cache isolation cell
//! additionally churns tenant 0's ruleset *mid-measurement* (a scripted
//! burst stream racing the serving passes) behind per-tenant hot caches,
//! then hard-fails unless tenant 0 classifies packet-for-packet like
//! linear search over its post-churn rules while every neighbour still
//! matches its original ground truth — churn isolation and
//! generation-based cache invalidation, measured on every PR.
//!
//! Results land in `BENCH_throughput.json` (schema `pclass-throughput/v7`,
//! documented in `docs/SCHEMA.md` and the README's "Scenario matrix"
//! section): every run, churn, and tenant record carries its `profile`
//! tag, and the header records the measuring host (logical CPU count,
//! rustc version) so `--check` can flag cross-host comparisons.  Each
//! `builds` record carries the memory footprint of one classifier build;
//! the flat-arena variants additionally record their arena layout
//! statistics; cached cells carry `cache` hit/miss/eviction summaries.
//! Tenant cells additionally record their declared `weights`, a
//! router-wide `memory` record (budget, bytes in use, cache slots
//! granted) with per-tenant memory reports in each slice, and — on the
//! admission cell — an `admission` record (evict/readmit cycles, the
//! router's lifetime admission counters, the churn-vs-static throughput
//! ratio, and the packets that arrived under a retired handle).  The
//! 5-part cell key is unchanged from v5 — policy cells are new *cells*,
//! distinguished by profile tag, not a new key part.
//!
//! Every quiescent cell is measured as the best of seven aggregates of
//! back-to-back engine runs, after one warmup pass (cold arena, page
//! faults) that also calibrates how many trace passes one aggregate needs
//! to cover a minimum wall-clock window (~25 ms): at quick-mode packet
//! counts a fast classifier finishes a single pass in tens of
//! microseconds, where one scheduler burst on a shared CI runner is
//! indistinguishable from a real regression.  Stretching the measured
//! window (and taking the best of seven) keeps the gate stable without
//! inflating the sweep — construction of the large arenas, not
//! measurement, dominates its wall clock.
//!
//! With `--check <baseline.json>` the harness re-runs the sweep and then
//! compares every `(classifier, ruleset, tenants, workers, profile)` cell
//! present in both the fresh run and the baseline — quiescent, churn,
//! *and* tenant cells, always like-for-like (a churn, Zipf, or tenant
//! cell never compares against a quiescent single-tenant one).  Because
//! absolute Mpps depends on the host, the comparison is *calibrated*: the
//! median of the per-cell new/baseline ratios, capped at 1, is taken as
//! the machine-speed factor, and a cell regresses when it falls more than
//! `--tolerance` (default 0.5) below its calibrated expectation;
//! multi-worker cells get a tolerance a quarter of the way to 1, churn
//! and tenant cells half of the way (see `pclass_bench::check`).
//! `--report-md <path>` additionally writes the per-cell verdicts as a
//! markdown table — CI appends it to `$GITHUB_STEP_SUMMARY`.
//!
//! Exit status: 1 if any classifier disagrees with linear search, any
//! churn cell fails its post-churn verification, or any tenant cell fails
//! its per-tenant verification, its weighted-fairness check, or its
//! admission-throughput floor; 2 if the regression check fails; 3 if the
//! baseline cannot be read or shares no cells with the fresh run.

use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
use pclass_algos::hypercuts::{HyperCutsClassifier, HyperCutsConfig};
use pclass_algos::update::{classify_live_linear, UpdatableClassifier};
use pclass_algos::{FlatSettings, FlatTreeClassifier, HotCacheConfig, LaneWidth};
use pclass_bench::check::{self, HostInfo, RunCell};
use pclass_bench::churn::{self, ChurnProfile};
use pclass_bench::scenario::{self, Scenario};
use pclass_bench::{default_tenant_spec, roster_entries, serving_roster_lanes, WORKLOAD_SEED};
use pclass_classbench::SeedStyle;
use pclass_engine::{Engine, EngineConfig, TenantId, TenantRun, ThroughputReport, WorkerReport};
use pclass_types::{ArenaStats, CacheStats, FairnessSummary, MemoryReport, RuleSet, Trace};
use serde::json;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Hot-flow cache accounting of one cached cell (schema v6): the
/// configured geometry plus cumulative hit/miss/eviction counters over
/// the cell's measured window.  `None` on uncached cells.
#[derive(Debug, Clone, Serialize)]
struct CacheSummary {
    capacity: usize,
    assoc: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    hit_rate: f64,
}

impl CacheSummary {
    fn new(geometry: HotCacheConfig, stats: CacheStats) -> CacheSummary {
        CacheSummary {
            capacity: geometry.capacity,
            assoc: geometry.assoc,
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            hit_rate: stats.hit_rate(),
        }
    }
}

/// One engine run in the JSON record.
#[derive(Debug, Clone, Serialize)]
struct RunRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    packets: usize,
    workers: usize,
    batch: usize,
    profile: String,
    wall_ns: u64,
    mpps: f64,
    per_worker: Vec<WorkerReport>,
    cache: Option<CacheSummary>,
}

/// A classifier that could not be built for a ruleset (with the reason), so
/// gaps in the trajectory are explicit rather than silent.
#[derive(Debug, Clone, Serialize)]
struct SkipRecord {
    classifier: String,
    ruleset: String,
    reason: String,
}

/// Memory footprint of one classifier build (one record per successful
/// (classifier, ruleset) build; `arena` is present for the flat variants).
#[derive(Debug, Clone, Serialize)]
struct BuildRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    memory_bytes: usize,
    arena: Option<ArenaStats>,
}

/// One live-update cell: an updatable classifier serving under a churn
/// profile's update stream through the epoch-swap cell.
#[derive(Debug, Clone, Serialize)]
struct ChurnRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    workers: usize,
    profile: String,
    updates: u64,
    bursts: u64,
    packets_served: u64,
    serve_wall_ns: u64,
    mpps_under_churn: f64,
    update_p50_ns: u64,
    update_p95_ns: u64,
    update_p99_ns: u64,
    inserts: u64,
    deletes: u64,
    reflattens: u64,
    overflow_rules: u64,
    verified: bool,
}

/// One tenant's slice of a multi-tenant cell (schema v7): its handle
/// (`t<slot>@e<epoch>`), declared scheduling weight, ruleset, traffic
/// share, busy-time throughput, SLO-relative share (1.0 = exactly the
/// weighted fair share), batch-latency percentiles, and memory
/// accounting (classifier bytes, cache-slice bytes, per-tenant budget).
#[derive(Debug, Clone, Serialize)]
struct TenantSliceRecord {
    tenant: String,
    ruleset: String,
    rules: usize,
    weight: u32,
    pkts: u64,
    mpps: f64,
    slo_rel: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    memory: MemoryReport,
    cache: Option<CacheSummary>,
}

/// Router-wide memory accounting of one tenant cell (schema v7): the
/// configured budget (if any), the bytes currently charged against it
/// (classifiers plus cache slices, including evicted tenants' slices
/// kept allocated for recycling), and the hot-cache slots granted across
/// the live roster.
#[derive(Debug, Clone, Serialize)]
struct MemoryRecord {
    budget_bytes: Option<usize>,
    in_use_bytes: usize,
    cache_slots: usize,
}

/// The admission cell's churn-phase summary (schema v7): evict/readmit
/// cycles performed mid-trace (totalled across the measured phases), the
/// router's lifetime admission counters (construction admissions
/// included), the static reference throughput the churn phases are gated
/// against (the best of [`TENANT_AGGREGATES`] like-for-like
/// progress-paced windows with no roster operations, measured just
/// before them), the best churn phase's ratio against it, and that
/// phase's packets that arrived under a retired handle while their
/// tenant was away (decided `NoMatch`, never served by the slot's next
/// occupant).
#[derive(Debug, Clone, Serialize)]
struct AdmissionRecord {
    cycles: u64,
    admitted: u64,
    evicted: u64,
    static_mpps: f64,
    vs_static: f64,
    unroutable: u64,
}

/// One multi-tenant cell: N per-tenant classifiers behind one
/// `TenantRouter` serving an interleaved tagged trace.  `ruleset` is the
/// mix name (e.g. `acl1_10000+15x500`), `solo_mpps` the throughput of
/// serving the same rulesets one tenant at a time on the same worker
/// count, and `router_vs_solo` their ratio.  `weights` are the declared
/// per-tenant scheduling weights in slot order; `admission` is present
/// only on the admission cell, whose headline `mpps` is the churn-phase
/// figure.
#[derive(Debug, Clone, Serialize)]
struct TenantCellRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    tenants: usize,
    workers: usize,
    batch: usize,
    profile: String,
    packets: u64,
    wall_ns: u64,
    mpps: f64,
    solo_mpps: f64,
    router_vs_solo: f64,
    weights: Vec<u32>,
    fairness: FairnessSummary,
    per_tenant: Vec<TenantSliceRecord>,
    memory: MemoryRecord,
    cache: Option<CacheSummary>,
    admission: Option<AdmissionRecord>,
    verified: bool,
}

/// Top-level schema of `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
struct BenchFile {
    schema: String,
    seed: u64,
    quick: bool,
    host: HostInfo,
    worker_counts: Vec<usize>,
    runs: Vec<RunRecord>,
    skipped: Vec<SkipRecord>,
    builds: Vec<BuildRecord>,
    churn: Vec<ChurnRecord>,
    tenants: Vec<TenantCellRecord>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let churn_mode = args.iter().any(|a| a == "--churn");
    let tenant_mode = args.iter().any(|a| a == "--tenants");
    // A value-taking flag with its value missing must be a hard error: a
    // silently ignored `--check` would leave the regression gate off while
    // CI stays green.
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a value");
                    std::process::exit(3);
                })
        })
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let check_path = flag_value("--check");
    let report_md_path = flag_value("--report-md");
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            let parsed: f64 = t.parse().unwrap_or(f64::NAN);
            // Outside [0, 1) the gate degenerates: >= 1 can never flag a
            // cell (silently off), < 0 flags nearly all of them.
            if !(0.0..1.0).contains(&parsed) {
                eprintln!("--tolerance must be a fraction in [0, 1), got {t}");
                std::process::exit(3);
            }
            parsed
        })
        .unwrap_or(0.5);
    // Lane width for the flat-arena vector walk: `--lane-width 1` serves
    // the scalar fallback, 4/8/16 the explicit-lane walk (default 8).
    // A global run setting, not a cell axis — it is not recorded in the
    // JSON, so baselines used with `--check` should stick to the default.
    let lane_width = flag_value("--lane-width")
        .map(|w| {
            let parsed: usize = w.parse().unwrap_or_else(|_| {
                eprintln!("--lane-width must be one of 1, 4, 8, 16, got {w}");
                std::process::exit(3);
            });
            if ![1usize, 4, 8, 16].contains(&parsed) {
                eprintln!("--lane-width must be one of 1, 4, 8, 16, got {w}");
                std::process::exit(3);
            }
            LaneWidth::from_width(parsed)
        })
        .unwrap_or_default();

    // Read the baseline *before* the sweep so `--check` and `--out` may
    // point at the same file (the CI perf-smoke job does exactly that).
    let baseline = check_path.as_deref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(3);
        });
        json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(3);
        })
    });

    let packets = if quick { 4_000 } else { 20_000 };
    let worker_counts = scenario::worker_ladder(quick);
    let cells = scenario::scenarios(quick);

    let mut runs = Vec::new();
    let mut skipped = Vec::new();
    let mut builds = Vec::new();
    let mut churn_records = Vec::new();
    let mut mismatches = 0usize;
    let mut churn_failures = 0usize;
    let mut tenant_failures = 0usize;

    // Group the matrix by ruleset (first-appearance order), so each
    // ruleset and its classifier roster are built exactly once however
    // many trace/churn cells share them.
    let mut groups: Vec<(SeedStyle, usize)> = Vec::new();
    for s in &cells {
        if !groups.contains(&(s.style, s.rules)) {
            groups.push((s.style, s.rules));
        }
    }

    for (style, rules) in groups {
        let group: Vec<&Scenario> = cells
            .iter()
            .filter(|s| s.style == style && s.rules == rules)
            .collect();
        let ruleset = group[0].ruleset();
        println!(
            "== {} ({} rules, {} packets) ==",
            ruleset.name(),
            ruleset.len(),
            packets
        );

        let roster = serving_roster_lanes(&ruleset, group[0].scope(), lane_width);
        for skip in roster.skipped {
            eprintln!(
                "skip {} on {}: {}",
                skip.classifier,
                ruleset.name(),
                skip.reason
            );
            skipped.push(SkipRecord {
                classifier: skip.classifier.to_string(),
                ruleset: ruleset.name().to_string(),
                reason: skip.reason,
            });
        }
        for build in roster.builds {
            builds.push(BuildRecord {
                classifier: build.classifier.to_string(),
                ruleset: ruleset.name().to_string(),
                rules: ruleset.len(),
                memory_bytes: build.memory_bytes,
                arena: build.arena,
            });
        }

        // Trace generation is deterministic, so cells sharing a trace
        // profile share one generated trace; cells that will not run
        // (churn cells without --churn) generate nothing.
        let mut traces: Vec<(scenario::TraceProfile, Trace)> = Vec::new();
        for cell in group {
            let profile = cell.profile_tag();
            if cell.churn.is_some() && !churn_mode {
                continue; // churn cells only run under --churn
            }
            let trace = match traces.iter().position(|(p, _)| *p == cell.trace) {
                Some(i) => &traces[i].1,
                None => {
                    traces.push((cell.trace, cell.trace.trace(&ruleset, packets)));
                    &traces.last().expect("just pushed").1
                }
            };
            match cell.churn {
                None => {
                    println!("-- trace profile: {} --", profile);
                    println!(
                        "{:<14} {:>7} | {:>10} {:>10}",
                        "classifier", "workers", "wall [ms]", "Mpps"
                    );
                    let truth = trace.ground_truth(&ruleset);
                    for (name, classifier) in &roster.classifiers {
                        for &workers in worker_counts {
                            // Size the cache to the trace's flow working
                            // set (ClassBench bursts mean ~trace/2 distinct
                            // flows): the harness measures repeated passes,
                            // so the steady state it reports is a cache
                            // that *holds* the offered flows — CLOCK
                            // pressure is covered by the tenant cells,
                            // whose per-tenant slices are budgeted.
                            let geometry = HotCacheConfig::new(
                                trace.len().next_power_of_two(),
                                HotCacheConfig::DEFAULT_ASSOC,
                            );
                            let mut config = EngineConfig::new().workers(workers);
                            if cell.cache {
                                config = config.hot_cache(geometry);
                            }
                            let engine = config.engine(Arc::clone(classifier));
                            // The warmup pass (cold arena, page faults)
                            // also carries the packet-for-packet gate —
                            // the engine is deterministic, so one check
                            // covers every subsequent pass of this cell.
                            // Cached cells verify a *second* pass too: the
                            // warm pass answers from the cache, a path the
                            // cold pass never takes.
                            let warmup = engine.classify_trace(trace);
                            let warm_ok =
                                !cell.cache || engine.classify_trace(trace).results == truth;
                            if warmup.results != truth || !warm_ok {
                                mismatches += 1;
                                eprintln!(
                                    "MISMATCH: {} with {} workers disagrees with linear \
                                     search on {} ({})",
                                    name,
                                    workers,
                                    ruleset.name(),
                                    profile
                                );
                                continue;
                            }
                            let measured = measure_cell(&engine, trace, &warmup.report);
                            println!(
                                "{:<14} {:>7} | {:>10.2} {:>10.3}",
                                name,
                                workers,
                                measured.wall_ns as f64 / 1e6,
                                measured.mpps
                            );
                            runs.push(RunRecord {
                                classifier: name.to_string(),
                                ruleset: ruleset.name().to_string(),
                                rules: ruleset.len(),
                                packets: measured.pkts as usize,
                                workers,
                                batch: engine.batch_size(),
                                profile: profile.clone(),
                                wall_ns: measured.wall_ns,
                                mpps: measured.mpps,
                                per_worker: measured.per_worker,
                                cache: engine
                                    .cache_stats()
                                    .map(|stats| CacheSummary::new(geometry, stats)),
                            });
                        }
                    }
                }
                Some(churn_profile) => {
                    let (records, failures) =
                        churn_sweep(&ruleset, trace, churn_profile, &profile, lane_width);
                    churn_records.extend(records);
                    churn_failures += failures;
                }
            }
        }
    }

    let tenant_records = if tenant_mode {
        let (records, failures) = tenant_sweep(quick, packets, lane_width);
        tenant_failures += failures;
        records
    } else {
        Vec::new()
    };

    let file = BenchFile {
        schema: "pclass-throughput/v7".to_string(),
        seed: WORKLOAD_SEED,
        quick,
        host: HostInfo::current(),
        worker_counts: worker_counts.to_vec(),
        runs,
        skipped,
        builds,
        churn: churn_records,
        tenants: tenant_records,
    };
    std::fs::write(&out_path, json::to_file_string(&file))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "\nwrote {} ({} runs, {} churn cells, {} tenant cells)",
        out_path,
        file.runs.len(),
        file.churn.len(),
        file.tenants.len()
    );

    if mismatches > 0 {
        eprintln!("{mismatches} engine run(s) disagreed with linear search");
        std::process::exit(1);
    }
    if churn_failures > 0 {
        eprintln!("{churn_failures} churn cell(s) failed post-churn verification");
        std::process::exit(1);
    }
    if tenant_failures > 0 {
        eprintln!("{tenant_failures} tenant cell(s) failed per-tenant verification");
        std::process::exit(1);
    }

    match (baseline, check_path) {
        (Some(baseline), Some(path)) => {
            if !check_against_baseline(
                &baseline,
                &path,
                &file,
                tolerance,
                report_md_path.as_deref(),
            ) {
                std::process::exit(2);
            }
        }
        _ => {
            if let Some(md_path) = report_md_path {
                let md = "### Throughput sweep\n\nNo regression check was run \
                          (no `--check <baseline>` given); the sweep completed \
                          and verified packet-for-packet.\n";
                std::fs::write(&md_path, md)
                    .unwrap_or_else(|e| panic!("cannot write {md_path}: {e}"));
            }
        }
    }
}

/// One quiescent cell's throughput measurement (a best-of-two aggregate).
struct CellMeasurement {
    pkts: u64,
    wall_ns: u64,
    mpps: f64,
    per_worker: Vec<WorkerReport>,
}

/// Minimum wall-clock window one measured aggregate should cover.  Below
/// this, a single scheduler burst on a shared CI runner dominates the
/// measurement and the regression gate turns flaky (a 50+ Mpps classifier
/// finishes a 4,000-packet quick trace in ~70 µs).  25 ms × [`AGGREGATES`]
/// per cell is still noise against the build time that dominates the
/// sweep (the 64 k-rule arenas take tens of seconds to construct), and on
/// shared hosts — where a noisy neighbour can steal half the cycles for
/// milliseconds at a time — the best of seven long windows is what makes
/// regenerated baselines reproducible run to run.
const TARGET_CELL_WALL_NS: u64 = 25_000_000;

/// Measured aggregates per cell; the best (highest-Mpps) one is recorded.
const AGGREGATES: usize = 7;

/// Upper bound on trace passes per aggregate, so a mis-calibrated warmup
/// cannot make one cell arbitrarily slow to measure.  It only binds when
/// a pass is under ~49 µs (the fastest quick-mode cells, ~80+ Mpps);
/// everything else reaches [`TARGET_CELL_WALL_NS`] with fewer passes.
const MAX_CELL_PASSES: u64 = 512;

/// Measures one (classifier, workers) cell: the warmup run calibrates how
/// many back-to-back trace passes one aggregate needs to cover
/// [`TARGET_CELL_WALL_NS`], then the best (highest-Mpps) of [`AGGREGATES`] such
/// aggregates is returned — throughput over the summed window, with the
/// per-worker breakdown of the aggregate's fastest pass.
fn measure_cell(
    engine: &Engine,
    trace: &pclass_types::Trace,
    warmup: &ThroughputReport,
) -> CellMeasurement {
    let passes = (TARGET_CELL_WALL_NS / warmup.wall_ns.max(1)).clamp(1, MAX_CELL_PASSES);
    let mut best: Option<CellMeasurement> = None;
    for _ in 0..AGGREGATES {
        let mut pkts = 0u64;
        let mut wall_ns = 0u64;
        let mut fastest_pass: Option<ThroughputReport> = None;
        for _ in 0..passes {
            let run = engine.classify_trace(trace);
            pkts += run.report.pkts;
            wall_ns += run.report.wall_ns;
            if fastest_pass
                .as_ref()
                .is_none_or(|f| run.report.mpps > f.mpps)
            {
                fastest_pass = Some(run.report);
            }
        }
        let mpps = if wall_ns == 0 {
            0.0
        } else {
            pkts as f64 * 1e3 / wall_ns as f64
        };
        if best.as_ref().is_none_or(|b| mpps > b.mpps) {
            best = Some(CellMeasurement {
                pkts,
                wall_ns,
                mpps,
                per_worker: fastest_pass.map(|f| f.per_worker).unwrap_or_default(),
            });
        }
    }
    best.expect("at least one aggregate measured")
}

/// Runs one churn profile over every updatable classifier for one ruleset;
/// returns the records and the number of verification failures.
fn churn_sweep(
    ruleset: &RuleSet,
    trace: &Trace,
    profile: ChurnProfile,
    profile_tag: &str,
    lane_width: LaneWidth,
) -> (Vec<ChurnRecord>, usize) {
    let updates = profile.stream(ruleset);
    let config = profile.config();
    println!(
        "-- churn profile: {} ({} updates in bursts of {}, {} serving workers, {:?}) --",
        profile_tag,
        updates.len(),
        config.burst_ops,
        config.workers,
        config.pacing
    );
    println!(
        "{:<14} | {:>10} {:>12} {:>12} {:>12}  verified",
        "classifier", "Mpps", "p50 [us]", "p99 [us]", "reflattens"
    );
    let mut records = Vec::new();
    let mut failures = 0usize;

    let mut cell = |name: &str, m: Result<churn::ChurnMeasurement, String>| match m {
        Ok(m) => {
            if !m.verified {
                failures += 1;
                eprintln!(
                    "CHURN MISMATCH: {} on {} ({}) disagrees with a fresh rebuild after churn",
                    name,
                    ruleset.name(),
                    profile_tag
                );
            }
            println!(
                "{:<14} | {:>10.3} {:>12.1} {:>12.1} {:>12}  {}",
                name,
                m.mpps_under_churn,
                m.update_p50_ns as f64 / 1e3,
                m.update_p99_ns as f64 / 1e3,
                m.update_stats.reflattens,
                if m.verified { "yes" } else { "NO" }
            );
            records.push(ChurnRecord {
                classifier: name.to_string(),
                ruleset: ruleset.name().to_string(),
                rules: ruleset.len(),
                workers: config.workers,
                profile: profile_tag.to_string(),
                updates: m.updates,
                bursts: m.bursts,
                packets_served: m.packets_served,
                serve_wall_ns: m.serve_wall_ns,
                mpps_under_churn: m.mpps_under_churn,
                update_p50_ns: m.update_p50_ns,
                update_p95_ns: m.update_p95_ns,
                update_p99_ns: m.update_p99_ns,
                inserts: m.update_stats.inserts,
                deletes: m.update_stats.deletes,
                reflattens: m.update_stats.reflattens,
                overflow_rules: m.update_stats.overflow_rules,
                verified: m.verified,
            });
        }
        Err(e) => {
            failures += 1;
            eprintln!(
                "CHURN ERROR: {} on {} ({}): {}",
                name,
                ruleset.name(),
                profile_tag,
                e
            );
        }
    };

    let settings = FlatSettings {
        lanes: lane_width,
        ..FlatSettings::default()
    };
    let hicuts = |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults());
    let hypercuts =
        |rs: &RuleSet| HyperCutsClassifier::build(rs, &HyperCutsConfig::paper_defaults());
    cell(
        "hicuts",
        churn::run_churn(hicuts(ruleset), hicuts, trace, &updates, &config),
    );
    cell(
        "hicuts-flat",
        churn::run_churn(
            hicuts(ruleset).flatten().with_settings(settings),
            |rs| hicuts(rs).flatten().with_settings(settings),
            trace,
            &updates,
            &config,
        ),
    );
    cell(
        "hypercuts",
        churn::run_churn(hypercuts(ruleset), hypercuts, trace, &updates, &config),
    );
    cell(
        "hypercuts-flat",
        churn::run_churn(
            hypercuts(ruleset).flatten().with_settings(settings),
            |rs| hypercuts(rs).flatten().with_settings(settings),
            trace,
            &updates,
            &config,
        ),
    );
    (records, failures)
}

/// Measured aggregates per tenant cell; fewer than the quiescent
/// [`AGGREGATES`] because every cell measures the router *and* the
/// solo-sequential baseline over the same number of trace passes.
const TENANT_AGGREGATES: usize = 3;

/// Evict/readmit cycles the admission cell's controller performs against
/// the last (smallest) tenant, per churn phase, while the serving loop
/// races it ([`TENANT_AGGREGATES`] phases are measured, best kept).
const ADMISSION_CYCLES: usize = 3;

/// The admission cell's acceptance floor: the best churn phase (tenants
/// coming and going mid-trace) must sustain at least this fraction of the
/// best like-for-like static window's throughput.
const ADMISSION_VS_STATIC_FLOOR: f64 = 0.8;

/// Weighted-fairness hard check: every served tenant's SLO-relative
/// throughput must land within this tolerance of 1.0 …
const SLO_REL_TOLERANCE: f64 = 0.10;

/// … and the weighted Jain index must reach this floor.
const WEIGHTED_JAIN_FLOOR: f64 = 0.95;

/// What one tenant cell's measurement phase produced: the accumulated
/// packet/wall totals behind the headline Mpps, and the run whose
/// per-tenant reports and fairness indices the record carries (the best
/// static pass, or the post-churn verification run on the admission and
/// sustained cells).
struct TenantCellMeasure {
    pkts: u64,
    wall_ns: u64,
    mpps: f64,
    run: TenantRun,
}

/// Runs every tenant scenario over the flat-arena serving roster: one
/// `FlatTreeClassifier` per tenant behind a shared
/// [`pclass_engine::TenantRouter`], declared through
/// [`pclass_engine::TenantSpec`]s seeded by the serving roster's
/// per-classifier `spec` hook (see [`roster_entries`]), verified
/// packet-for-packet *per tenant* against linear-search ground truth on
/// the warmup pass, then measured as the best of [`TENANT_AGGREGATES`]
/// calibrated wall-clock windows.  Each cell also serves the same
/// rulesets solo-sequentially (one tenant at a time, same worker count)
/// so the record carries the `router_vs_solo` ratio — how much aggregate
/// throughput the shared worker pool costs relative to giving every
/// tenant the machine to itself.  The policy cells layer on top:
///
/// * `+weighted` declares the mix's non-uniform scheduling weights and
///   offers load in weight proportion; the cell hard-fails unless every
///   served tenant's SLO-relative throughput lands within
///   [`SLO_REL_TOLERANCE`] of 1.0 and the weighted Jain index reaches
///   [`WEIGHTED_JAIN_FLOOR`].
/// * `+admission` measures churn phases after the static one: per phase,
///   a controller evicts and readmits the last tenant
///   [`ADMISSION_CYCLES`] times, paced by the router's progress counter,
///   while a serving thread keeps passing over the tagged trace
///   (replacement classifiers are pre-built off the measured windows, so
///   the gated figure is the control plane's cost, not construction's).
///   Both sides of the gate are best-of-[`TENANT_AGGREGATES`], measured
///   as interleaved A/B pairs (static window, then churn phase) so both
///   sides sample the same host-noise spells: the best churn phase
///   against the best like-for-like static window.  The
///   recorded `mpps` is the best churn phase; the cell hard-fails unless
///   it sustains [`ADMISSION_VS_STATIC_FLOOR`] of the static reference,
///   every surviving tenant stays bit-identical to its ground truth, and
///   the readmitted tenant verifies against linear search over its live
///   rules.
/// * `+churn-sustained` applies a progress-paced single-update stream to
///   tenant 0 through `live(t)` for the whole measured window (the
///   tenant analogue of [`ChurnProfile::Sustained`]), then verifies
///   tenant 0 against linear search over its post-churn rules and every
///   neighbour against its untouched ground truth.
fn tenant_sweep(
    quick: bool,
    packets: usize,
    lane_width: LaneWidth,
) -> (Vec<TenantCellRecord>, usize) {
    let mut records = Vec::new();
    let mut failures = 0usize;
    let settings = FlatSettings {
        lanes: lane_width,
        ..FlatSettings::default()
    };
    type FlatBuild<'a> = &'a dyn Fn(&RuleSet) -> FlatTreeClassifier;
    let build_hicuts_flat = move |rs: &RuleSet| {
        HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults())
            .flatten()
            .with_settings(settings)
    };
    let build_hypercuts_flat = move |rs: &RuleSet| {
        HyperCutsClassifier::build(rs, &HyperCutsConfig::paper_defaults())
            .flatten()
            .with_settings(settings)
    };
    let roster: [(&str, FlatBuild); 2] = [
        ("hicuts-flat", &build_hicuts_flat),
        ("hypercuts-flat", &build_hypercuts_flat),
    ];

    for s in scenario::tenant_scenarios(quick) {
        let workloads = s.workloads(packets);
        let weights = s.weights();
        let mix = s.mix.mix_name();
        let profile = s.profile_tag();
        let total_rules: usize = workloads.iter().map(|w| w.ruleset.len()).sum();
        println!(
            "== tenants: {} ({} tenants, {} rules total, {} workers, {}) ==",
            mix,
            workloads.len(),
            total_rules,
            s.workers,
            profile
        );
        let truths: Vec<_> = workloads
            .iter()
            .map(|w| w.trace.ground_truth(&w.ruleset))
            .collect();
        let traces: Vec<Trace> = workloads.iter().map(|w| w.trace.clone()).collect();
        let offered: usize = traces.iter().map(|t| t.len()).sum();
        println!(
            "{:<14} {:>7} | {:>10} {:>10} {:>8} {:>7}",
            "classifier", "workers", "Mpps", "solo", "vs solo", "jain"
        );
        for (name, build) in roster {
            // The roster is declared spec-first: the serving roster's
            // per-classifier `spec` hook seeds each tenant's `TenantSpec`
            // and the cell layers its scheduling weight on top (the
            // cache share defaults to the weight, so weighted cells also
            // slice the cache budget in weight proportion).
            let spec_of = roster_entries()
                .into_iter()
                .find(|e| e.name == name)
                .map(|e| e.spec)
                .unwrap_or(default_tenant_spec);
            // Router-wide entry budget scaled to the offered load, sliced
            // across the roster by cache share (see `TenantRouter`).
            let geometry =
                HotCacheConfig::new(offered.next_power_of_two(), HotCacheConfig::DEFAULT_ASSOC);
            // The progress counter (packets served, bumped per sub-batch)
            // paces the admission and sustained-churn controllers against
            // actual serving progress; attaching it to every cell costs
            // one relaxed fetch_add per sub-batch.
            let progress = Arc::new(AtomicU64::new(0));
            let mut config = EngineConfig::new()
                .workers(s.workers)
                .lane_width(lane_width)
                .progress(Arc::clone(&progress));
            if s.cache {
                config = config.hot_cache(geometry);
            }
            let router =
                config.tenant_router(workloads.iter().zip(&weights).map(|(w, &weight)| {
                    (spec_of(w.name.clone()).weight(weight), build(&w.ruleset))
                }));
            let ids = router.tenant_ids();
            let parts: Vec<(TenantId, &Trace)> =
                ids.iter().map(|&id| (id, &traces[id.slot()])).collect();
            // The router interleaves by roster weight, so weighted cells
            // drain their weight-proportional traces together and every
            // tenant's offered share equals its weight share.
            let tagged = router.interleave(format!("{mix}_tagged"), &parts);
            // The warmup pass carries the per-tenant packet-for-packet
            // gate — the router is deterministic, so one projection per
            // tenant covers every subsequent pass of this cell.  Cached
            // cells verify a *second* (warm) pass too: it answers from
            // the per-tenant caches, a path the cold pass never takes.
            let warmup = router.classify_tagged(&tagged);
            let mut verified = ids
                .iter()
                .all(|&id| tagged.tenant_results(id, &warmup.results) == truths[id.slot()]);
            if verified && s.cache {
                let warm = router.classify_tagged(&tagged);
                verified = ids
                    .iter()
                    .all(|&id| tagged.tenant_results(id, &warm.results) == truths[id.slot()]);
            }
            if !verified {
                failures += 1;
                eprintln!(
                    "TENANT MISMATCH: {} on {} with {} workers disagrees with linear \
                     search for at least one tenant",
                    name, mix, s.workers
                );
                continue;
            }
            let passes =
                (TARGET_CELL_WALL_NS / warmup.report.wall_ns.max(1)).clamp(1, MAX_CELL_PASSES);

            // Solo-sequential baseline, measured quiescent *before* any
            // churn phase mutates tenant rulesets: best of
            // [`TENANT_AGGREGATES`] aggregates of `passes` sweeps, one
            // tenant at a time on the same worker pool.
            let mut best_solo = 0.0f64;
            for _ in 0..TENANT_AGGREGATES {
                let mut solo_pkts = 0u64;
                let mut solo_wall_ns = 0u64;
                for _ in 0..passes {
                    for &id in &ids {
                        let run = router.classify_solo(id, &traces[id.slot()]);
                        solo_pkts += run.report.pkts;
                        solo_wall_ns += run.report.wall_ns;
                    }
                }
                if solo_wall_ns > 0 {
                    best_solo = best_solo.max(solo_pkts as f64 * 1e3 / solo_wall_ns as f64);
                }
            }

            // Best (highest-Mpps) of [`TENANT_AGGREGATES`] aggregates of
            // `passes` router passes — the static cells' measurement, and
            // the admission cell's static phase.
            let measure_router_best = || {
                let mut best: Option<(u64, u64, f64, TenantRun)> = None;
                for _ in 0..TENANT_AGGREGATES {
                    let mut pkts = 0u64;
                    let mut wall_ns = 0u64;
                    let mut fastest: Option<TenantRun> = None;
                    for _ in 0..passes {
                        let run = router.classify_tagged(&tagged);
                        pkts += run.report.pkts;
                        wall_ns += run.report.wall_ns;
                        if fastest
                            .as_ref()
                            .is_none_or(|f| run.report.mpps > f.report.mpps)
                        {
                            fastest = Some(run);
                        }
                    }
                    let mpps = if wall_ns == 0 {
                        0.0
                    } else {
                        pkts as f64 * 1e3 / wall_ns as f64
                    };
                    if best.as_ref().is_none_or(|b| mpps > b.2) {
                        best = Some((pkts, wall_ns, mpps, fastest.expect("at least one pass")));
                    }
                }
                best.expect("at least one aggregate measured")
            };

            // A serve-until-stopped loop for the phases where a
            // controller mutates the roster or a ruleset mid-measurement:
            // accumulates packets, wall time and unroutable counts per
            // pass, and checks the stop flag at pass boundaries (so at
            // most one drain pass lands after the paced window closes).
            let serve_until = |stop: &AtomicBool| {
                let mut pkts = 0u64;
                let mut wall_ns = 0u64;
                let mut unroutable = 0u64;
                loop {
                    let run = router.classify_tagged(&tagged);
                    pkts += run.report.pkts;
                    wall_ns += run.report.wall_ns;
                    unroutable += run.unroutable;
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                (pkts, wall_ns, unroutable)
            };

            let mut admission_record: Option<AdmissionRecord> = None;
            let measure = if s.sustained {
                // A progress-paced stream of single-rule updates lands on
                // tenant 0 through `live(t)` while the serving loop keeps
                // passing over the tagged trace — sustained churn under
                // multi-tenant load.  Burst k of n lands once k/n of the
                // window's packets has actually been served, however fast
                // the host is.
                let updates = ChurnProfile::Sustained.stream(&workloads[0].ruleset);
                let bursts: Vec<_> = updates.chunks(1).collect();
                let live0 = router.live(ids[0]);
                let window = passes.max(4) * tagged.len() as u64;
                let stop = AtomicBool::new(false);
                let (t_pkts, t_wall, _) = std::thread::scope(|scope| {
                    let server = scope.spawn(|| serve_until(&stop));
                    let base = progress.load(Ordering::Relaxed);
                    'stream: for (k, burst) in bursts.iter().enumerate() {
                        let threshold = base + window * k as u64 / bursts.len() as u64;
                        while progress.load(Ordering::Relaxed) < threshold {
                            // The serving loop only exits once `stop` is
                            // set, so an early finish is a panic — abort
                            // the stream and let the join surface it.
                            if server.is_finished() {
                                break 'stream;
                            }
                            std::thread::sleep(std::time::Duration::from_micros(20));
                        }
                        live0
                            .apply_batch(burst)
                            .expect("scripted sustained burst applies");
                    }
                    // Let the serving side finish the paced window, so
                    // the figure is dominated by passes that actually
                    // overlapped the stream.
                    while progress.load(Ordering::Relaxed) < base + window && !server.is_finished()
                    {
                        std::thread::sleep(std::time::Duration::from_micros(20));
                    }
                    stop.store(true, Ordering::Release);
                    server.join().expect("tenant serving loop panicked")
                });
                // Quiescent again: tenant 0 must serve exactly what
                // linear search over its post-churn rules decides, every
                // neighbour its untouched ground truth — churn isolation
                // under sustained load, verified packet for packet.
                let final_run = router.classify_tagged(&tagged);
                let final_rules = router.live(ids[0]).snapshot().live_rules();
                let t0_ok = tagged
                    .tenant_headers(ids[0])
                    .iter()
                    .zip(tagged.tenant_results(ids[0], &final_run.results))
                    .all(|(header, got)| got == classify_live_linear(&final_rules, header));
                let others_ok = ids[1..]
                    .iter()
                    .all(|&id| tagged.tenant_results(id, &final_run.results) == truths[id.slot()]);
                if !(t0_ok && others_ok) {
                    verified = false;
                    failures += 1;
                    eprintln!(
                        "TENANT SUSTAINED-CHURN MISMATCH: {name} on {mix} — the paced \
                         stream leaked into the serving path (t0 ok: {t0_ok}, neighbours \
                         ok: {others_ok})"
                    );
                }
                let t_mpps = if t_wall == 0 {
                    0.0
                } else {
                    t_pkts as f64 * 1e3 / t_wall as f64
                };
                TenantCellMeasure {
                    pkts: t_pkts,
                    wall_ns: t_wall,
                    mpps: t_mpps,
                    run: final_run,
                }
            } else {
                // Static measurement — with the scripted tenant-0 burst
                // stream racing the aggregates on the churn isolation
                // cell: every burst publishes a new snapshot generation
                // (which also retires tenant 0's cached entries), and the
                // stream is finite and deterministic, so the post-churn
                // ruleset is exact regardless of timing.
                let (b_pkts, b_wall, b_mpps, fastest) = std::thread::scope(|scope| {
                    let updater = s.churn.then(|| {
                        let live0 = router.live(ids[0]);
                        let stream = ChurnProfile::Burst1.stream(&workloads[0].ruleset);
                        scope.spawn(move || {
                            for burst in stream.chunks(4) {
                                live0
                                    .apply_batch(burst)
                                    .expect("scripted tenant-0 burst applies");
                                std::thread::yield_now();
                            }
                        })
                    });
                    let best = measure_router_best();
                    if let Some(handle) = updater {
                        handle.join().expect("tenant churn updater panicked");
                    }
                    best
                });
                if s.churn {
                    // Quiescent again: tenant 0 must now serve exactly
                    // what linear search over its post-churn rules
                    // decides, while every neighbour still matches its
                    // untouched ground truth — churn isolation, verified
                    // packet for packet.
                    let final_run = router.classify_tagged(&tagged);
                    let final_rules = router.live(ids[0]).snapshot().live_rules();
                    let t0_ok = tagged
                        .tenant_headers(ids[0])
                        .iter()
                        .zip(tagged.tenant_results(ids[0], &final_run.results))
                        .all(|(header, got)| got == classify_live_linear(&final_rules, header));
                    let others_ok = ids[1..].iter().all(|&id| {
                        tagged.tenant_results(id, &final_run.results) == truths[id.slot()]
                    });
                    if !(t0_ok && others_ok) {
                        verified = false;
                        failures += 1;
                        eprintln!(
                            "TENANT CHURN MISMATCH: {name} on {mix} — churn on tenant 0 \
                             leaked into the serving path (t0 ok: {t0_ok}, neighbours ok: \
                             {others_ok})"
                        );
                    }
                }
                if s.admission {
                    // Churn phase: evict and readmit the last (smallest)
                    // tenant while the serving loop keeps passing over
                    // the tagged trace, the operations spread over the
                    // window at progress-paced thresholds.  The
                    // readmitted tenant comes back under a fresh epoch,
                    // so the old handle's packets are decided `NoMatch`
                    // (counted `unroutable`) rather than served by the
                    // slot's next occupant — the documented eviction
                    // semantics, measured under load.
                    let window = passes.max(2) * tagged.len() as u64;
                    // The vs-static gate measures [`TENANT_AGGREGATES`]
                    // *interleaved A/B pairs* — a static progress-paced
                    // window through the same serving loop, then a churn
                    // phase, alternating — and takes the best of each
                    // side.  Interleaving makes both sides sample the
                    // same host-noise spells (the methodology the lane
                    // walk's A/B comparison established): measuring all
                    // static windows first would let one contended spell
                    // land entirely on the churn half and read as a
                    // phantom admission cost.
                    let paced_window = |stop: &AtomicBool| {
                        std::thread::scope(|scope| {
                            let server = scope.spawn(|| serve_until(stop));
                            let base = progress.load(Ordering::Relaxed);
                            while progress.load(Ordering::Relaxed) < base + window
                                && !server.is_finished()
                            {
                                std::thread::sleep(std::time::Duration::from_micros(20));
                            }
                            stop.store(true, Ordering::Release);
                            server.join().expect("tenant serving loop panicked")
                        })
                    };
                    // Replacement classifiers are pre-built outside the
                    // measured windows: the gated figure is the cost of
                    // the admission/eviction control plane racing the data
                    // plane, not of classifier construction (which a real
                    // control plane would also do off the serving path).
                    let victim_slot = ids.last().expect("at least one tenant").slot();
                    let mut replacements: Vec<FlatTreeClassifier> = (0..TENANT_AGGREGATES
                        * ADMISSION_CYCLES)
                        .map(|_| build(&workloads[victim_slot].ruleset))
                        .collect();
                    // Each churn phase performs [`ADMISSION_CYCLES`]
                    // evict/readmit cycles; the readmitted handle carries
                    // across phases, so `current` after the last phase is
                    // the tenant the quiescent verification below judges.
                    let mut current = *ids.last().expect("at least one tenant");
                    let mut total_cycles = 0u64;
                    let mut static_ref_mpps = 0.0f64;
                    let mut best_phase: Option<(u64, u64, u64, f64)> = None;
                    for _ in 0..TENANT_AGGREGATES {
                        let (s_pkts, s_wall, _) = paced_window(&AtomicBool::new(false));
                        if s_wall > 0 {
                            static_ref_mpps =
                                static_ref_mpps.max(s_pkts as f64 * 1e3 / s_wall as f64);
                        }
                        let stop = AtomicBool::new(false);
                        let (c_pkts, c_wall, c_unroutable) = std::thread::scope(|scope| {
                            let server = scope.spawn(|| serve_until(&stop));
                            let base = progress.load(Ordering::Relaxed);
                            let ops = (ADMISSION_CYCLES * 2) as u64;
                            'ops: for k in 0..ops {
                                let threshold = base + window * (k + 1) / (ops + 1);
                                while progress.load(Ordering::Relaxed) < threshold {
                                    if server.is_finished() {
                                        break 'ops;
                                    }
                                    std::thread::sleep(std::time::Duration::from_micros(20));
                                }
                                if k % 2 == 0 {
                                    router
                                        .evict(current)
                                        .expect("admission cell evicts a live tenant");
                                } else {
                                    let slot = current.slot();
                                    let spec =
                                        spec_of(workloads[slot].name.clone()).weight(weights[slot]);
                                    current = router
                                        .admit(
                                            spec,
                                            replacements
                                                .pop()
                                                .expect("one pre-built classifier per cycle"),
                                        )
                                        .expect("admission cell readmits within budget");
                                    total_cycles += 1;
                                }
                            }
                            while progress.load(Ordering::Relaxed) < base + window
                                && !server.is_finished()
                            {
                                std::thread::sleep(std::time::Duration::from_micros(20));
                            }
                            stop.store(true, Ordering::Release);
                            server.join().expect("tenant serving loop panicked")
                        });
                        let c_mpps = if c_wall == 0 {
                            0.0
                        } else {
                            c_pkts as f64 * 1e3 / c_wall as f64
                        };
                        if best_phase.is_none_or(|(_, _, _, m)| c_mpps > m) {
                            best_phase = Some((c_pkts, c_wall, c_unroutable, c_mpps));
                        }
                    }
                    let (c_pkts, c_wall, c_unroutable, c_mpps) =
                        best_phase.expect("at least one churn phase measured");
                    let (cycles, readmitted) = (total_cycles, current);
                    // Quiescent verification on a fresh interleave over
                    // the *current* handles: survivors must be
                    // bit-identical to their ground truth, the readmitted
                    // tenant verified against linear search over its
                    // freshly built rules.
                    let final_ids = router.tenant_ids();
                    let final_parts: Vec<(TenantId, &Trace)> = final_ids
                        .iter()
                        .map(|&id| (id, &traces[id.slot()]))
                        .collect();
                    let final_tagged =
                        router.interleave(format!("{mix}_tagged_final"), &final_parts);
                    let final_run = router.classify_tagged(&final_tagged);
                    let survivors_ok =
                        final_ids.iter().filter(|&&id| id != readmitted).all(|&id| {
                            final_tagged.tenant_results(id, &final_run.results) == truths[id.slot()]
                        });
                    let readmitted_rules = router.live(readmitted).snapshot().live_rules();
                    let readmitted_ok = final_tagged
                        .tenant_headers(readmitted)
                        .iter()
                        .zip(final_tagged.tenant_results(readmitted, &final_run.results))
                        .all(|(header, got)| {
                            got == classify_live_linear(&readmitted_rules, header)
                        });
                    let vs_static = if static_ref_mpps == 0.0 {
                        0.0
                    } else {
                        c_mpps / static_ref_mpps
                    };
                    if !(survivors_ok
                        && readmitted_ok
                        && cycles >= 1
                        && vs_static >= ADMISSION_VS_STATIC_FLOOR)
                    {
                        verified = false;
                        failures += 1;
                        eprintln!(
                            "TENANT ADMISSION FAILURE: {name} on {mix} — survivors ok: \
                             {survivors_ok}, readmitted ok: {readmitted_ok}, {cycles} \
                             cycles, vs static x{vs_static:.2} (floor \
                             {ADMISSION_VS_STATIC_FLOOR})"
                        );
                    }
                    let (admitted, evicted) = router.admission_counts();
                    admission_record = Some(AdmissionRecord {
                        cycles,
                        admitted,
                        evicted,
                        static_mpps: static_ref_mpps,
                        vs_static,
                        unroutable: c_unroutable,
                    });
                    TenantCellMeasure {
                        pkts: c_pkts,
                        wall_ns: c_wall,
                        mpps: c_mpps,
                        run: final_run,
                    }
                } else {
                    TenantCellMeasure {
                        pkts: b_pkts,
                        wall_ns: b_wall,
                        mpps: b_mpps,
                        run: fastest,
                    }
                }
            };

            // The weighted-fairness acceptance bar, hard-checked on the
            // run the record carries (a complete pass over the
            // weight-proportional trace, so SLO-relative shares are
            // exact, not sampling noise).
            if s.weighted && verified {
                let slo_ok = measure
                    .run
                    .tenants
                    .iter()
                    .filter(|t| t.pkts > 0)
                    .all(|t| (t.slo_rel - 1.0).abs() <= SLO_REL_TOLERANCE);
                let weighted_jain = measure.run.fairness.weighted_jain;
                if !slo_ok || weighted_jain < WEIGHTED_JAIN_FLOOR {
                    verified = false;
                    failures += 1;
                    eprintln!(
                        "TENANT FAIRNESS MISS: {name} on {mix} — SLO-relative shares \
                         within ±{:.0}%: {slo_ok}, weighted Jain {weighted_jain:.3} \
                         (floor {WEIGHTED_JAIN_FLOOR})",
                        SLO_REL_TOLERANCE * 100.0
                    );
                }
            }

            let router_vs_solo = if best_solo == 0.0 {
                0.0
            } else {
                measure.mpps / best_solo
            };
            println!(
                "{:<14} {:>7} | {:>10.3} {:>10.3} {:>8.2} {:>7.3}",
                name,
                s.workers,
                measure.mpps,
                best_solo,
                router_vs_solo,
                measure.run.fairness.jain_index
            );
            if let Some(adm) = &admission_record {
                println!(
                    "   admission: {} evict/readmit cycles ({} admitted, {} evicted), \
                     static {:.3} Mpps, vs static x{:.2}, {} unroutable",
                    adm.cycles,
                    adm.admitted,
                    adm.evicted,
                    adm.static_mpps,
                    adm.vs_static,
                    adm.unroutable
                );
            }
            let total_shares: usize = weights.iter().map(|&w| w as usize).sum();
            let per_tenant: Vec<TenantSliceRecord> = measure
                .run
                .tenants
                .iter()
                .map(|t| TenantSliceRecord {
                    tenant: t.tenant.to_string(),
                    ruleset: t.name.clone(),
                    rules: workloads[t.tenant.slot()].ruleset.len(),
                    weight: t.weight,
                    pkts: t.pkts,
                    mpps: t.mpps,
                    slo_rel: t.slo_rel,
                    p50_ns: t.batch_latency.p50_ns,
                    p95_ns: t.batch_latency.p95_ns,
                    p99_ns: t.batch_latency.p99_ns,
                    memory: router.memory_report(t.tenant),
                    cache: t.cache.map(|stats| {
                        // The slice's *configured* share of the
                        // router-wide entry budget (the cache itself
                        // rounds its set count to a power of two).
                        let slice = HotCacheConfig::new(
                            geometry.capacity * t.weight as usize / total_shares.max(1),
                            geometry.assoc,
                        );
                        CacheSummary::new(slice, stats)
                    }),
                })
                .collect();
            // Cell-level cache accounting is cumulative over the whole
            // cell (warmup + every measured pass), merged across the live
            // roster against the router-wide geometry budget.
            let cache = s.cache.then(|| {
                let mut total = CacheStats::default();
                for &id in &router.tenant_ids() {
                    if let Some(stats) = router.cache_stats(id) {
                        total.merge(&stats);
                    }
                }
                CacheSummary::new(geometry, total)
            });
            let memory = MemoryRecord {
                budget_bytes: router.memory_budget(),
                in_use_bytes: router.memory_in_use(),
                cache_slots: router.cache_slot_total(),
            };
            records.push(TenantCellRecord {
                classifier: name.to_string(),
                ruleset: mix.clone(),
                rules: total_rules,
                tenants: workloads.len(),
                workers: s.workers,
                batch: router.batch_size(),
                profile: profile.clone(),
                packets: measure.pkts,
                wall_ns: measure.wall_ns,
                mpps: measure.mpps,
                solo_mpps: best_solo,
                router_vs_solo,
                weights: weights.clone(),
                fairness: measure.run.fairness,
                per_tenant,
                memory,
                cache,
                admission: admission_record,
                verified,
            });
        }
    }
    (records, failures)
}

/// Runs the [`check`] comparison over every quiescent, churn, *and*
/// tenant cell, prints the per-cell report and (optionally) writes it as
/// markdown;
/// returns `false` when the gate fails (see `pclass_bench::check` for the
/// model — the decision logic is unit-tested there).
fn check_against_baseline(
    baseline: &json::Value,
    path: &str,
    file: &BenchFile,
    tolerance: f64,
    report_md_path: Option<&str>,
) -> bool {
    let base = check::baseline_cells(baseline);
    let base_host = check::baseline_host(baseline);
    let mut fresh: Vec<RunCell> = file
        .runs
        .iter()
        .map(|run| RunCell {
            classifier: run.classifier.clone(),
            ruleset: run.ruleset.clone(),
            tenants: 0,
            workers: run.workers as u64,
            profile: run.profile.clone(),
            mpps: run.mpps,
        })
        .collect();
    fresh.extend(file.churn.iter().map(|cell| RunCell {
        classifier: cell.classifier.clone(),
        ruleset: cell.ruleset.clone(),
        tenants: 0,
        workers: cell.workers as u64,
        profile: cell.profile.clone(),
        mpps: cell.mpps_under_churn,
    }));
    fresh.extend(file.tenants.iter().map(|cell| RunCell {
        classifier: cell.classifier.clone(),
        ruleset: cell.ruleset.clone(),
        tenants: cell.tenants as u64,
        workers: cell.workers as u64,
        profile: cell.profile.clone(),
        mpps: cell.mpps,
    }));
    let report = match check::compare(&base, &fresh, tolerance) {
        Ok(report) => report,
        Err(check::CheckError::NoComparableCells) => {
            eprintln!(
                "--check: no comparable (classifier, ruleset, tenants, workers, profile) \
                 cells in {path}"
            );
            std::process::exit(3);
        }
    };

    let host_note = check::host_mismatch(base_host.as_ref(), &file.host);
    if let Some(note) = &host_note {
        eprintln!("--check: {note}");
    }
    if let Some(md_path) = report_md_path {
        let md = check::markdown_report(&report, path, tolerance, host_note.as_deref());
        std::fs::write(md_path, md).unwrap_or_else(|e| panic!("cannot write {md_path}: {e}"));
        println!("wrote {md_path}");
    }
    println!(
        "\ncheck vs {path}: {} cells, median ratio x{:.3}, calibration x{:.3}, tolerance {:.0}%",
        report.cells.len(),
        report.median_ratio,
        report.calibration,
        tolerance * 100.0
    );
    println!(
        "{:<16} {:<10} {:<22} {:>7} | {:>9} {:>9} {:>7}  status",
        "classifier", "ruleset", "profile", "workers", "base", "new", "rel"
    );
    for verdict in &report.cells {
        println!(
            "{:<16} {:<10} {:<22} {:>7} | {:>9.3} {:>9.3} {:>7.2}  {}",
            verdict.cell.classifier,
            verdict.cell.ruleset,
            verdict.cell.profile,
            verdict.cell.workers,
            verdict.base_mpps,
            verdict.cell.mpps,
            verdict.rel,
            if verdict.regressed {
                "REGRESSION"
            } else {
                "ok"
            }
        );
    }
    if !report.missing_classifiers.is_empty() {
        eprintln!(
            "--check: baseline classifier(s) missing from the fresh sweep: {}",
            report.missing_classifiers.join(", ")
        );
    }
    if !report.missing_cells.is_empty() {
        eprintln!(
            "--check: {} baseline cell(s) have no partner in the fresh sweep — \
             the measured envelope shrank:",
            report.missing_cells.len()
        );
        for cell in &report.missing_cells {
            eprintln!(
                "  {} {} {} x{}",
                cell.classifier, cell.ruleset, cell.profile, cell.workers
            );
        }
    }
    if report.passed() {
        println!("regression check passed");
        true
    } else {
        if report.regressions() > 0 {
            eprintln!(
                "{} cell(s) regressed below the calibrated baseline",
                report.regressions()
            );
        }
        false
    }
}
