//! Serving-throughput harness: every classifier, batched and multi-core,
//! with an optional regression gate against a committed baseline.
//!
//! ```text
//! cargo run --release -p pclass-bench --bin throughput
//! cargo run --release -p pclass-bench --bin throughput -- --quick
//! cargo run --release -p pclass-bench --bin throughput -- --out perf.json
//! cargo run --release -p pclass-bench --bin throughput -- --quick \
//!     --check BENCH_throughput.json --tolerance 0.5
//! ```
//!
//! Runs every classifier in the workspace — linear search, original HiCuts
//! and HyperCuts plus their flat-arena variants, RFC, the functional TCAM
//! model and the accelerator model with both modified cut algorithms —
//! through the `pclass-engine` serving layer over ClassBench-style
//! generated rulesets at several sizes and worker counts, verifies every
//! run packet-for-packet against linear search, and writes the
//! measurements to `BENCH_throughput.json` (schema documented in the
//! README's "Serving throughput" section).  Each `builds` record carries
//! the memory footprint of one classifier build; the flat-arena variants
//! additionally record their arena layout statistics.
//!
//! Every cell is measured as the best of two back-to-back engine runs (the
//! first doubling as a warmup), so a one-off scheduler burst on a shared
//! CI runner cannot produce a spuriously slow cell.
//!
//! With `--check <baseline.json>` the harness re-runs the sweep and then
//! compares every `(classifier, ruleset, workers)` cell present in both the
//! fresh run and the baseline.  Because absolute Mpps depends on the host,
//! the comparison is *calibrated*: the median of the per-cell new/baseline
//! ratios, capped at 1, is taken as the machine-speed factor, and a cell
//! regresses when it falls more than `--tolerance` (default 0.5, i.e. 50%)
//! below its calibrated expectation; multi-worker cells, which fold in the
//! host's core count and scheduler placement, get a tolerance halfway to 1
//! (0.75 at the default).  A uniform slowdown moves the
//! calibration factor, not the verdict, while a broad genuine *speedup*
//! never raises the bar for untouched cells (the cap) — the gate exists to
//! catch *selective* regressions, e.g. a PR that quietly gives back the
//! flat-tree or phase-major batching wins on one hot path while everything
//! else keeps its speed.  CI runs `--quick --check BENCH_throughput.json`
//! as the `perf-smoke` job.
//!
//! Exit status: 1 if any classifier disagrees with linear search, 2 if the
//! regression check fails, 3 if the baseline cannot be read or shares no
//! cells with the fresh run.

use pclass_bench::check::{self, RunCell};
use pclass_bench::{acl_ruleset, serving_roster, trace_for, WORKLOAD_SEED};
use pclass_engine::{Engine, WorkerReport};
use pclass_types::{ArenaStats, MatchResult, RuleSet, Trace};
use serde::json;
use serde::Serialize;
use std::sync::Arc;

/// One engine run in the JSON record.
#[derive(Debug, Clone, Serialize)]
struct RunRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    packets: usize,
    workers: usize,
    batch: usize,
    wall_ns: u64,
    mpps: f64,
    per_worker: Vec<WorkerReport>,
}

/// A classifier that could not be built for a ruleset (with the reason), so
/// gaps in the trajectory are explicit rather than silent.
#[derive(Debug, Clone, Serialize)]
struct SkipRecord {
    classifier: String,
    ruleset: String,
    reason: String,
}

/// Memory footprint of one classifier build (one record per successful
/// (classifier, ruleset) build; `arena` is present for the flat variants).
#[derive(Debug, Clone, Serialize)]
struct BuildRecord {
    classifier: String,
    ruleset: String,
    rules: usize,
    memory_bytes: usize,
    arena: Option<ArenaStats>,
}

/// Top-level schema of `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
struct BenchFile {
    schema: String,
    seed: u64,
    quick: bool,
    worker_counts: Vec<usize>,
    runs: Vec<RunRecord>,
    skipped: Vec<SkipRecord>,
    builds: Vec<BuildRecord>,
}

struct Workload {
    ruleset: RuleSet,
    trace: Trace,
    truth: Vec<MatchResult>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // A value-taking flag with its value missing must be a hard error: a
    // silently ignored `--check` would leave the regression gate off while
    // CI stays green.
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a value");
                    std::process::exit(3);
                })
        })
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let check_path = flag_value("--check");
    let tolerance: f64 = flag_value("--tolerance")
        .map(|t| {
            let parsed: f64 = t.parse().unwrap_or(f64::NAN);
            // Outside [0, 1) the gate degenerates: >= 1 can never flag a
            // cell (silently off), < 0 flags nearly all of them.
            if !(0.0..1.0).contains(&parsed) {
                eprintln!("--tolerance must be a fraction in [0, 1), got {t}");
                std::process::exit(3);
            }
            parsed
        })
        .unwrap_or(0.5);

    // Read the baseline *before* the sweep so `--check` and `--out` may
    // point at the same file (the CI perf-smoke job does exactly that).
    let baseline = check_path.as_deref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(3);
        });
        json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(3);
        })
    });

    let sizes: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[500, 2_000, 10_000]
    };
    let packets = if quick { 4_000 } else { 20_000 };
    let worker_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };

    let mut runs = Vec::new();
    let mut skipped = Vec::new();
    let mut builds = Vec::new();
    let mut mismatches = 0usize;

    for &size in sizes {
        let ruleset = acl_ruleset(size);
        let trace = trace_for(&ruleset, packets);
        let truth = trace.ground_truth(&ruleset);
        let workload = Workload {
            ruleset,
            trace,
            truth,
        };
        println!(
            "== {} ({} rules, {} packets) ==",
            workload.ruleset.name(),
            size,
            packets
        );
        println!(
            "{:<14} {:>7} | {:>10} {:>10}",
            "classifier", "workers", "wall [ms]", "Mpps"
        );

        let roster = serving_roster(&workload.ruleset);
        for skip in roster.skipped {
            eprintln!(
                "skip {} on {}: {}",
                skip.classifier,
                workload.ruleset.name(),
                skip.reason
            );
            skipped.push(SkipRecord {
                classifier: skip.classifier.to_string(),
                ruleset: workload.ruleset.name().to_string(),
                reason: skip.reason,
            });
        }
        for build in roster.builds {
            builds.push(BuildRecord {
                classifier: build.classifier.to_string(),
                ruleset: workload.ruleset.name().to_string(),
                rules: size,
                memory_bytes: build.memory_bytes,
                arena: build.arena,
            });
        }
        for (name, classifier) in roster.classifiers {
            for &workers in worker_counts {
                let engine = Engine::from_shared(workers, Arc::clone(&classifier));
                // Best of two back-to-back runs: the first doubles as a
                // warmup (cold arena, page faults), and a one-off scheduler
                // burst in either window cannot produce a spuriously slow
                // cell — important because the --check gate compares single
                // cells against the committed baseline.
                let first = engine.classify_trace(&workload.trace);
                let second = engine.classify_trace(&workload.trace);
                let run = if second.report.mpps >= first.report.mpps {
                    second
                } else {
                    first
                };
                if run.results != workload.truth {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH: {} with {} workers disagrees with linear search on {}",
                        name,
                        workers,
                        workload.ruleset.name()
                    );
                    continue;
                }
                println!(
                    "{:<14} {:>7} | {:>10.2} {:>10.3}",
                    name,
                    workers,
                    run.report.wall_ns as f64 / 1e6,
                    run.report.mpps
                );
                runs.push(RunRecord {
                    classifier: name.to_string(),
                    ruleset: workload.ruleset.name().to_string(),
                    rules: size,
                    packets,
                    workers,
                    batch: engine.batch_size(),
                    wall_ns: run.report.wall_ns,
                    mpps: run.report.mpps,
                    per_worker: run.report.per_worker,
                });
            }
        }
    }

    let file = BenchFile {
        schema: "pclass-throughput/v2".to_string(),
        seed: WORKLOAD_SEED,
        quick,
        worker_counts: worker_counts.to_vec(),
        runs,
        skipped,
        builds,
    };
    std::fs::write(&out_path, json::to_file_string(&file))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {} ({} runs)", out_path, file.runs.len());

    if mismatches > 0 {
        eprintln!("{mismatches} engine run(s) disagreed with linear search");
        std::process::exit(1);
    }

    if let (Some(baseline), Some(path)) = (baseline, check_path) {
        if !check_against_baseline(&baseline, &path, &file.runs, tolerance) {
            std::process::exit(2);
        }
    }
}

/// Runs the [`check`] comparison and prints the per-cell report; returns
/// `false` when the gate fails (see `pclass_bench::check` for the model —
/// the decision logic is unit-tested there).
fn check_against_baseline(
    baseline: &json::Value,
    path: &str,
    runs: &[RunRecord],
    tolerance: f64,
) -> bool {
    let base = check::baseline_cells(baseline);
    let fresh: Vec<RunCell> = runs
        .iter()
        .map(|run| RunCell {
            classifier: run.classifier.clone(),
            ruleset: run.ruleset.clone(),
            workers: run.workers as u64,
            mpps: run.mpps,
        })
        .collect();
    let report = match check::compare(&base, &fresh, tolerance) {
        Ok(report) => report,
        Err(check::CheckError::NoComparableCells) => {
            eprintln!("--check: no comparable (classifier, ruleset, workers) cells in {path}");
            std::process::exit(3);
        }
    };

    println!(
        "\ncheck vs {path}: {} cells, median ratio x{:.3}, calibration x{:.3}, tolerance {:.0}%",
        report.cells.len(),
        report.median_ratio,
        report.calibration,
        tolerance * 100.0
    );
    println!(
        "{:<16} {:<10} {:>7} | {:>9} {:>9} {:>7}  status",
        "classifier", "ruleset", "workers", "base", "new", "rel"
    );
    for verdict in &report.cells {
        println!(
            "{:<16} {:<10} {:>7} | {:>9.3} {:>9.3} {:>7.2}  {}",
            verdict.cell.classifier,
            verdict.cell.ruleset,
            verdict.cell.workers,
            verdict.base_mpps,
            verdict.cell.mpps,
            verdict.rel,
            if verdict.regressed {
                "REGRESSION"
            } else {
                "ok"
            }
        );
    }
    if !report.missing_classifiers.is_empty() {
        eprintln!(
            "--check: baseline classifier(s) missing from the fresh sweep: {}",
            report.missing_classifiers.join(", ")
        );
    }
    if report.passed() {
        println!("regression check passed");
        true
    } else {
        if report.regressions() > 0 {
            eprintln!(
                "{} cell(s) regressed below the calibrated baseline",
                report.regressions()
            );
        }
        false
    }
}
