//! Ablation bench: the paper's key algorithmic change is starting at 32 cuts
//! and capping at 256.  This bench sweeps the starting cut count and the cap
//! and measures build time (the memory/cycles side of the ablation is
//! reported by `reproduce speed_tradeoff` and EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pclass_bench::acl_ruleset;
use pclass_core::builder::{BuildConfig, CutAlgorithm, HwTree};
use std::time::Duration;

fn bench_cut_ablation(c: &mut Criterion) {
    let rs = acl_ruleset(1_000);
    let mut group = c.benchmark_group("ablation_cuts");

    // Starting cut count: the paper argues 32 beats 2 for build effort.
    for &start in &[2u32, 8, 32] {
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        cfg.start_cuts = start;
        group.bench_with_input(BenchmarkId::new("start_cuts", start), &cfg, |b, cfg| {
            b.iter(|| HwTree::build(&rs, cfg).unwrap().build_stats.cut_evaluations)
        });
    }

    // Cut cap: 256 keeps a node inside one memory word; smaller caps build
    // faster but deepen the tree.
    for &cap in &[64u32, 128, 256] {
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
        cfg.max_cuts = cap;
        cfg.start_cuts = cfg.start_cuts.min(cap);
        group.bench_with_input(BenchmarkId::new("max_cuts", cap), &cfg, |b, cfg| {
            b.iter(|| HwTree::build(&rs, cfg).unwrap().build_stats.cut_evaluations)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_cut_ablation
}
criterion_main!(benches);
