//! Criterion bench: preprocessing (search-structure build) cost of the
//! original vs the modified algorithms — the work behind Tables 2 and 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
use pclass_algos::hypercuts::{HyperCutsClassifier, HyperCutsConfig};
use pclass_algos::Classifier;
use pclass_bench::acl_ruleset;
use pclass_core::builder::{BuildConfig, CutAlgorithm};
use pclass_core::program::HardwareProgram;
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    for &size in &[150usize, 500, 1_600] {
        let rs = acl_ruleset(size);

        group.bench_with_input(BenchmarkId::new("hicuts_original", size), &rs, |b, rs| {
            b.iter(|| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).memory_bytes())
        });
        group.bench_with_input(
            BenchmarkId::new("hypercuts_original", size),
            &rs,
            |b, rs| {
                b.iter(|| {
                    HyperCutsClassifier::build(rs, &HyperCutsConfig::paper_defaults())
                        .memory_bytes()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("hicuts_modified", size), &rs, |b, rs| {
            b.iter(|| {
                HardwareProgram::build_with_capacity(
                    rs,
                    &BuildConfig::paper_defaults(CutAlgorithm::HiCuts),
                    4096,
                )
                .unwrap()
                .memory_bytes()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("hypercuts_modified", size),
            &rs,
            |b, rs| {
                b.iter(|| {
                    HardwareProgram::build_with_capacity(
                        rs,
                        &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
                        4096,
                    )
                    .unwrap()
                    .memory_bytes()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_build
}
criterion_main!(benches);
