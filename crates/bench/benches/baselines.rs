//! Criterion bench: baseline comparisons outside the decision-tree family —
//! RFC preprocessing, TCAM programming and the parallel multi-engine
//! frontend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pclass_bench::{acl_ruleset, styled_ruleset, trace_for};
use pclass_classbench::SeedStyle;
use pclass_core::builder::{BuildConfig, CutAlgorithm};
use pclass_core::parallel::ParallelAccelerator;
use pclass_core::program::HardwareProgram;
use pclass_tcam::TcamClassifier;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");

    // RFC preprocessing cost grows quickly with rule count.
    for &size in &[150usize, 500] {
        let rs = acl_ruleset(size);
        group.bench_with_input(BenchmarkId::new("rfc_preprocess", size), &rs, |b, rs| {
            b.iter(|| {
                pclass_algos::RfcClassifier::build(rs)
                    .map(|r| r.table_entries())
                    .unwrap_or(0)
            })
        });
    }

    // TCAM programming (range expansion) per seed style.
    for style in SeedStyle::ALL {
        let rs = styled_ruleset(style, 1_000);
        group.bench_with_input(
            BenchmarkId::new("tcam_program", style.name()),
            &rs,
            |b, rs| {
                b.iter(|| {
                    TcamClassifier::program(rs)
                        .map(|t| t.entries().len())
                        .unwrap_or(0)
                })
            },
        );
    }

    // Multi-engine scaling of the accelerator model.
    let rs = acl_ruleset(2_191);
    let trace = trace_for(&rs, 20_000);
    let program = HardwareProgram::build_with_capacity(
        &rs,
        &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
        4096,
    )
    .unwrap();
    group.throughput(Throughput::Elements(trace.len() as u64));
    for &engines in &[1usize, 2, 4] {
        let bank = ParallelAccelerator::new(&program, engines);
        group.bench_with_input(
            BenchmarkId::new("parallel_engines", engines),
            &trace,
            |b, trace| b.iter(|| bank.classify_trace(trace).cycles),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_baselines
}
criterion_main!(benches);
