//! Ablation bench: leaf size (binth) and the speed parameter.
//!
//! The paper stores whole rules in leaves (30 per memory word) and offers a
//! speed/memory trade-off (Eqs. 5–7); this bench measures how the leaf
//! threshold and packing mode change end-to-end classification cost in the
//! accelerator model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pclass_bench::{acl_ruleset, trace_for};
use pclass_core::builder::{BuildConfig, CutAlgorithm, SpeedMode};
use pclass_core::hw::Accelerator;
use pclass_core::program::HardwareProgram;
use std::time::Duration;

fn bench_leaf_ablation(c: &mut Criterion) {
    let rs = acl_ruleset(2_191);
    let trace = trace_for(&rs, 4_000);
    let pkts: Vec<_> = trace.headers().copied().collect();
    let mut group = c.benchmark_group("ablation_leaf");
    group.throughput(Throughput::Elements(pkts.len() as u64));

    for &binth in &[8usize, 16, 30] {
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
        cfg.binth = binth;
        let program = HardwareProgram::build_with_capacity(&rs, &cfg, 4096).unwrap();
        let engine = Accelerator::new(&program);
        group.bench_with_input(BenchmarkId::new("binth", binth), &pkts, |b, pkts| {
            b.iter(|| {
                pkts.iter()
                    .map(|p| engine.classify_packet(p).1.visible_cycles() as u64)
                    .sum::<u64>()
            })
        });
    }

    for speed in [SpeedMode::MemoryEfficient, SpeedMode::Throughput] {
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
        cfg.speed = speed;
        let program = HardwareProgram::build_with_capacity(&rs, &cfg, 4096).unwrap();
        let engine = Accelerator::new(&program);
        group.bench_with_input(
            BenchmarkId::new("speed", speed.as_u8()),
            &pkts,
            |b, pkts| {
                b.iter(|| {
                    pkts.iter()
                        .map(|p| engine.classify_packet(p).1.visible_cycles() as u64)
                        .sum::<u64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_leaf_ablation
}
criterion_main!(benches);
