//! Criterion bench: per-packet classification cost of every engine
//! (backs Tables 6 and 7 — energy and throughput are both per-packet work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pclass_algos::Classifier;
use pclass_bench::{acl_ruleset, software_hicuts, software_hypercuts, trace_for};
use pclass_core::builder::{BuildConfig, CutAlgorithm};
use pclass_core::hw::Accelerator;
use pclass_core::program::HardwareProgram;
use pclass_types::PacketHeader;
use std::time::Duration;

fn packets(n: usize) -> (Vec<PacketHeader>, pclass_types::RuleSet) {
    let rs = acl_ruleset(n);
    let trace = trace_for(&rs, 4_000);
    (trace.headers().copied().collect(), rs)
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    for &size in &[150usize, 1_000, 2_191] {
        let (pkts, rs) = packets(size);
        group.throughput(Throughput::Elements(pkts.len() as u64));

        let linear = pclass_algos::LinearClassifier::new(rs.clone());
        group.bench_with_input(BenchmarkId::new("linear", size), &pkts, |b, pkts| {
            b.iter(|| {
                pkts.iter()
                    .map(|p| linear.classify(p).rule_id().unwrap_or(0))
                    .sum::<u32>()
            })
        });

        let hicuts = software_hicuts(&rs);
        group.bench_with_input(BenchmarkId::new("hicuts_sw", size), &pkts, |b, pkts| {
            b.iter(|| {
                pkts.iter()
                    .map(|p| hicuts.classify(p).rule_id().unwrap_or(0))
                    .sum::<u32>()
            })
        });

        let hypercuts = software_hypercuts(&rs);
        group.bench_with_input(BenchmarkId::new("hypercuts_sw", size), &pkts, |b, pkts| {
            b.iter(|| {
                pkts.iter()
                    .map(|p| hypercuts.classify(p).rule_id().unwrap_or(0))
                    .sum::<u32>()
            })
        });

        if let Ok(rfc) = pclass_algos::RfcClassifier::build(&rs) {
            group.bench_with_input(BenchmarkId::new("rfc", size), &pkts, |b, pkts| {
                b.iter(|| {
                    pkts.iter()
                        .map(|p| rfc.classify(p).rule_id().unwrap_or(0))
                        .sum::<u32>()
                })
            });
        }

        let program = HardwareProgram::build_with_capacity(
            &rs,
            &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
            4096,
        )
        .unwrap();
        let engine = Accelerator::new(&program);
        group.bench_with_input(
            BenchmarkId::new("accelerator_model", size),
            &pkts,
            |b, pkts| {
                b.iter(|| {
                    pkts.iter()
                        .map(|p| engine.classify_packet(p).1.visible_cycles())
                        .sum::<u32>()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_classify
}
criterion_main!(benches);
